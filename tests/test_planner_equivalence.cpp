// Property tests: the grid-pruned planners (sched/plan_context.hpp, the
// grid paths in sched/tsp.cpp and sched/kmeans.cpp) must be bit-identical
// to the linear-scan reference implementations on every input — same picks,
// same sequences, same tours, same clusterings. Instances are sized past
// the small-n reference dispatch thresholds so the pruned code paths are
// what actually runs.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/rng.hpp"
#include "sched/kmeans.hpp"
#include "sched/plan_context.hpp"
#include "sched/planner.hpp"
#include "sched/tsp.hpp"

namespace {

using namespace wrsn;

struct Instance {
  std::vector<RechargeItem> items;
  PlannerParams params{JoulePerMeter{5.6}, Vec2{100.0, 100.0}};
  RvPlanState rv{{0.0, 0.0}, Joule{0.0}};
  std::vector<bool> taken;
};

// A random planning instance. Sizes span the small-n dispatch thresholds
// (16 for PlanContext, 128 for tours, 64 for k-means); fields vary from
// dense to sparse; some draws are all-critical or zero-budget.
Instance random_instance(Xoshiro256& rng) {
  Instance inst;
  const std::size_t n = 5 + rng.uniform_int(400);
  const double side = rng.uniform(20.0, 1200.0);
  const bool all_critical = rng.uniform() < 0.05;
  const bool zero_budget = rng.uniform() < 0.05;
  inst.items.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    RechargeItem it;
    it.pos = {rng.uniform(0.0, side), rng.uniform(0.0, side)};
    it.demand = Joule{rng.uniform(100.0, 4000.0)};
    it.critical = all_critical || rng.uniform() < 0.15;
    it.min_fraction = rng.uniform(0.01, 0.99);
    it.sensors = {i};
    inst.items.push_back(std::move(it));
  }
  inst.params.base = {rng.uniform(0.0, side), rng.uniform(0.0, side)};
  inst.params.em = JoulePerMeter{rng.uniform(1.0, 10.0)};
  inst.rv.pos = {rng.uniform(0.0, side), rng.uniform(0.0, side)};
  inst.rv.available =
      zero_budget ? Joule{0.0} : Joule{rng.uniform(1e3, 5e6)};
  inst.taken.assign(n, false);
  for (std::size_t i = 0; i < n; ++i) {
    if (rng.uniform() < 0.2) inst.taken[i] = true;
  }
  return inst;
}

constexpr int kTrials = 200;

TEST(PlannerEquivalence, GreedyNextMatchesReference) {
  Xoshiro256 rng(1001);
  for (int t = 0; t < kTrials; ++t) {
    const Instance inst = random_instance(rng);
    const PlanContext ctx(inst.items, inst.params);
    const auto ref = greedy_next(inst.rv, inst.items, inst.taken, inst.params);
    const auto opt = ctx.greedy_next(inst.rv, inst.taken);
    ASSERT_EQ(ref.has_value(), opt.has_value()) << "trial " << t;
    if (ref) {
      ASSERT_EQ(*ref, *opt) << "trial " << t;
    }
  }
}

TEST(PlannerEquivalence, NearestNextMatchesReference) {
  Xoshiro256 rng(2002);
  for (int t = 0; t < kTrials; ++t) {
    const Instance inst = random_instance(rng);
    const PlanContext ctx(inst.items, inst.params);
    const auto ref = nearest_next(inst.rv, inst.items, inst.taken, inst.params);
    const auto opt = ctx.nearest_next(inst.rv, inst.taken);
    ASSERT_EQ(ref.has_value(), opt.has_value()) << "trial " << t;
    if (ref) {
      ASSERT_EQ(*ref, *opt) << "trial " << t;
    }
  }
}

TEST(PlannerEquivalence, InsertionSequenceMatchesReference) {
  Xoshiro256 rng(3003);
  for (int t = 0; t < kTrials; ++t) {
    const Instance inst = random_instance(rng);
    const PlanContext ctx(inst.items, inst.params);
    std::vector<bool> taken_ref = inst.taken;
    std::vector<bool> taken_opt = inst.taken;
    const auto ref =
        insertion_sequence(inst.rv, inst.items, taken_ref, inst.params);
    const auto opt = ctx.insertion_sequence(inst.rv, taken_opt);
    ASSERT_EQ(ref, opt) << "trial " << t;
    ASSERT_EQ(taken_ref, taken_opt) << "trial " << t;
  }
}

TEST(PlannerEquivalence, NearestNeighborTourMatchesReference) {
  Xoshiro256 rng(4004);
  for (int t = 0; t < kTrials; ++t) {
    const Instance inst = random_instance(rng);
    std::vector<Vec2> points;
    points.reserve(inst.items.size());
    for (const RechargeItem& it : inst.items) points.push_back(it.pos);
    const auto ref = nearest_neighbor_tour_reference(inst.rv.pos, points);
    const auto opt = nearest_neighbor_tour(inst.rv.pos, points);
    ASSERT_EQ(ref, opt) << "trial " << t;
  }
}

TEST(PlannerEquivalence, TwoOptMatchesReference) {
  Xoshiro256 rng(5005);
  for (int t = 0; t < kTrials; ++t) {
    const Instance inst = random_instance(rng);
    std::vector<Vec2> points;
    points.reserve(inst.items.size());
    for (const RechargeItem& it : inst.items) points.push_back(it.pos);
    auto order_ref = nearest_neighbor_tour_reference(inst.rv.pos, points);
    auto order_opt = order_ref;
    two_opt_reference(inst.rv.pos, points, order_ref);
    two_opt(inst.rv.pos, points, order_opt);
    ASSERT_EQ(order_ref, order_opt) << "trial " << t;
    ASSERT_NEAR(open_tour_length(inst.rv.pos, points, order_ref),
                open_tour_length(inst.rv.pos, points, order_opt), 1e-9);
  }
}

TEST(PlannerEquivalence, TwoOptMatchesReferenceOnSubsetTours) {
  // `order` may index only a subset of `points` (the world plans tours over
  // served items while the grid sees every point).
  Xoshiro256 rng(6006);
  for (int t = 0; t < 50; ++t) {
    const Instance inst = random_instance(rng);
    std::vector<Vec2> points;
    points.reserve(inst.items.size());
    for (const RechargeItem& it : inst.items) points.push_back(it.pos);
    std::vector<std::size_t> order;
    for (std::size_t i = 0; i < points.size(); ++i) {
      if (rng.uniform() < 0.7) order.push_back(i);
    }
    // Shuffle so the tour is not already nearest-neighbour shaped.
    for (std::size_t i = order.size(); i > 1; --i) {
      std::swap(order[i - 1], order[rng.uniform_int(i)]);
    }
    auto order_ref = order;
    auto order_opt = order;
    two_opt_reference(inst.rv.pos, points, order_ref);
    two_opt(inst.rv.pos, points, order_opt);
    ASSERT_EQ(order_ref, order_opt) << "trial " << t;
  }
}

TEST(PlannerEquivalence, KMeansMatchesReference) {
  Xoshiro256 rng(7007);
  for (int t = 0; t < kTrials; ++t) {
    const Instance inst = random_instance(rng);
    std::vector<Vec2> points;
    points.reserve(inst.items.size());
    for (const RechargeItem& it : inst.items) points.push_back(it.pos);
    const std::size_t k = 1 + rng.uniform_int(12);
    // Identically seeded RNG copies: both paths must consume the stream the
    // same way (k-means++ is shared; Lloyd draws nothing).
    const std::uint64_t seed = rng.next();
    Xoshiro256 r_ref(seed);
    Xoshiro256 r_opt(seed);
    const auto ref = kmeans_reference(points, k, r_ref);
    const auto opt = kmeans(points, k, r_opt);
    ASSERT_EQ(ref.assignment, opt.assignment) << "trial " << t;
    ASSERT_EQ(ref.centroids.size(), opt.centroids.size()) << "trial " << t;
    for (std::size_t c = 0; c < ref.centroids.size(); ++c) {
      ASSERT_EQ(ref.centroids[c].x, opt.centroids[c].x) << "trial " << t;
      ASSERT_EQ(ref.centroids[c].y, opt.centroids[c].y) << "trial " << t;
    }
    ASSERT_EQ(ref.wcss, opt.wcss) << "trial " << t;
    ASSERT_EQ(ref.iterations, opt.iterations) << "trial " << t;
    ASSERT_EQ(ref.converged, opt.converged) << "trial " << t;
  }
}

TEST(PlannerEquivalence, AllCriticalAndZeroBudgetEdgeCases) {
  // Deterministic corners on top of the random draws above.
  Xoshiro256 rng(8008);
  for (const bool critical : {false, true}) {
    for (const double budget : {0.0, 1e4, 1e9}) {
      std::vector<RechargeItem> items;
      const std::size_t n = 200;
      for (std::size_t i = 0; i < n; ++i) {
        RechargeItem it;
        it.pos = {rng.uniform(0.0, 300.0), rng.uniform(0.0, 300.0)};
        it.demand = Joule{rng.uniform(100.0, 4000.0)};
        it.critical = critical;
        it.sensors = {i};
        items.push_back(std::move(it));
      }
      const PlannerParams params{JoulePerMeter{5.6}, Vec2{150.0, 150.0}};
      const RvPlanState rv{{10.0, 290.0}, Joule{budget}};
      const std::vector<bool> untaken(n, false);
      const PlanContext ctx(items, params);
      const auto g_ref = greedy_next(rv, items, untaken, params);
      const auto g_opt = ctx.greedy_next(rv, untaken);
      ASSERT_EQ(g_ref, g_opt);
      const auto n_ref = nearest_next(rv, items, untaken, params);
      const auto n_opt = ctx.nearest_next(rv, untaken);
      ASSERT_EQ(n_ref, n_opt);
      std::vector<bool> taken_ref = untaken;
      std::vector<bool> taken_opt = untaken;
      ASSERT_EQ(insertion_sequence(rv, items, taken_ref, params),
                ctx.insertion_sequence(rv, taken_opt));
      ASSERT_EQ(taken_ref, taken_opt);
    }
  }
}

}  // namespace
