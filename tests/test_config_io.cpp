#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "core/config_io.hpp"
#include "core/error.hpp"
#include "net/routing.hpp"

namespace wrsn {
namespace {

TEST(ConfigIo, KeysAreNonEmptyAndUnique) {
  const auto keys = config_keys();
  EXPECT_GT(keys.size(), 20u);
  std::set<std::string> unique(keys.begin(), keys.end());
  EXPECT_EQ(unique.size(), keys.size());
}

TEST(ConfigIo, GetReflectsDefaults) {
  const SimConfig cfg;
  EXPECT_EQ(config_get(cfg, "num_sensors"), "500");
  EXPECT_EQ(config_get(cfg, "scheduler"), "combined");
  EXPECT_EQ(config_get(cfg, "activation"), "round-robin");
  EXPECT_EQ(config_get(cfg, "sim_days"), "120");
  EXPECT_EQ(config_get(cfg, "energy_request_control"), "true");
}

TEST(ConfigIo, SetParsesEveryKind) {
  SimConfig cfg;
  config_set(cfg, "num_sensors", "250");
  EXPECT_EQ(cfg.num_sensors, 250u);
  config_set(cfg, "field_side_m", "150.5");
  EXPECT_DOUBLE_EQ(cfg.field_side.value(), 150.5);
  config_set(cfg, "scheduler", "partition");
  EXPECT_EQ(cfg.scheduler, "partition");
  config_set(cfg, "scheduler", "fcfs");
  EXPECT_EQ(cfg.scheduler, "fcfs");
  config_set(cfg, "activation", "full-time");
  EXPECT_EQ(cfg.activation, ActivationPolicy::kFullTime);
  config_set(cfg, "energy_request_control", "off");
  EXPECT_FALSE(cfg.energy_request_control);
  config_set(cfg, "two_opt_tours", "yes");
  EXPECT_TRUE(cfg.two_opt_tours);
  config_set(cfg, "sim_days", "30");
  EXPECT_DOUBLE_EQ(cfg.sim_duration.value(), 30.0 * 86400.0);
  config_set(cfg, "seed", "12345");
  EXPECT_EQ(cfg.seed, 12345u);
}

TEST(ConfigIo, RejectsBadInput) {
  SimConfig cfg;
  EXPECT_THROW(config_set(cfg, "no_such_key", "1"), InvalidArgument);
  EXPECT_THROW(config_set(cfg, "num_sensors", "many"), InvalidArgument);
  EXPECT_THROW(config_set(cfg, "num_sensors", "-5"), InvalidArgument);
  EXPECT_THROW(config_set(cfg, "num_sensors", "1.5"), InvalidArgument);
  EXPECT_THROW(config_set(cfg, "field_side_m", "12abc"), InvalidArgument);
  EXPECT_THROW(config_set(cfg, "scheduler", "quantum"), InvalidArgument);
  EXPECT_THROW(config_set(cfg, "routing", "pigeon"), InvalidArgument);
  EXPECT_THROW(config_set(cfg, "two_opt_tours", "maybe"), InvalidArgument);
  EXPECT_THROW(config_set(cfg, "link.enabled", "maybe"), InvalidArgument);
  EXPECT_THROW(config_set(cfg, "link.max_retx", "several"), InvalidArgument);
  EXPECT_THROW((void)config_get(cfg, "no_such_key"), InvalidArgument);
}

TEST(ConfigIo, UnknownEnumValueErrorsListValidNames) {
  // A typo in any enum-like knob must name every accepted value, so the fix
  // is readable straight off the error message.
  const auto error_for = [](const std::string& key, const std::string& value) {
    SimConfig cfg;
    try {
      config_set(cfg, key, value);
    } catch (const InvalidArgument& e) {
      return std::string(e.what());
    }
    ADD_FAILURE() << key << " accepted '" << value << "'";
    return std::string();
  };
  // Table-driven: each enum-like key pairs a bogus value with the full list
  // of names the error must surface. Registry-backed knobs pull the expected
  // list live from their registry, so a newly registered policy is covered
  // without touching this test.
  struct Case {
    const char* key;
    const char* bogus;
    std::vector<std::string> expected;
  };
  const std::vector<Case> cases = {
      {"scheduler", "quantum",
       {"greedy", "partition", "combined", "nearest-first", "fcfs", "edf"}},
      {"routing", "pigeon", routing_names()},
      {"activation", "psychic", {"full-time", "round-robin"}},
      {"target_motion", "warp", {"teleport", "random-waypoint"}},
      {"rv.charge_profile", "fusion", {"constant-power", "tapered-cc-cv"}},
  };
  for (const Case& c : cases) {
    const std::string message = error_for(c.key, c.bogus);
    for (const std::string& name : c.expected) {
      EXPECT_NE(message.find(name), std::string::npos)
          << c.key << ": " << message;
    }
  }
}

TEST(ConfigIo, TextRoundTrip) {
  SimConfig cfg;
  cfg.num_sensors = 321;
  cfg.scheduler = "nearest-first";
  cfg.energy_request_percentage = 0.35;
  cfg.rv.charge_power = watts(2.5);
  const std::string text = config_to_text(cfg);
  const SimConfig back = config_from_text(text);
  EXPECT_EQ(back.num_sensors, 321u);
  EXPECT_EQ(back.scheduler, "nearest-first");
  EXPECT_DOUBLE_EQ(back.energy_request_percentage, 0.35);
  EXPECT_DOUBLE_EQ(back.rv.charge_power.value(), 2.5);
}

TEST(ConfigIo, RoutingAndLinkKeysRoundTrip) {
  SimConfig cfg;
  cfg.routing = "greedy_geo";
  cfg.link.enabled = true;
  cfg.link.loss_floor = 0.02;
  cfg.link.loss_at_range = 0.4;
  cfg.link.loss_exponent = 2.5;
  cfg.link.max_retx = 5;
  cfg.link.rx_duty_tax = 0.03;
  const SimConfig back = config_from_text(config_to_text(cfg));
  EXPECT_EQ(back.routing, "greedy_geo");
  EXPECT_TRUE(back.link.enabled);
  EXPECT_DOUBLE_EQ(back.link.loss_floor, 0.02);
  EXPECT_DOUBLE_EQ(back.link.loss_at_range, 0.4);
  EXPECT_DOUBLE_EQ(back.link.loss_exponent, 2.5);
  EXPECT_EQ(back.link.max_retx, 5u);
  EXPECT_DOUBLE_EQ(back.link.rx_duty_tax, 0.03);
}

TEST(ConfigIo, ParsingSkipsCommentsAndBlanks) {
  const std::string text =
      "# a comment\n"
      "\n"
      "num_sensors = 42   # trailing comment\n"
      "  scheduler =  greedy  \n";
  const SimConfig cfg = config_from_text(text);
  EXPECT_EQ(cfg.num_sensors, 42u);
  EXPECT_EQ(cfg.scheduler, "greedy");
}

TEST(ConfigIo, ParsingOverlaysBase) {
  SimConfig base;
  base.num_targets = 7;
  const SimConfig cfg = config_from_text("num_sensors = 99\n", base);
  EXPECT_EQ(cfg.num_sensors, 99u);
  EXPECT_EQ(cfg.num_targets, 7u);  // untouched
}

TEST(ConfigIo, MalformedLinesRejected) {
  EXPECT_THROW((void)config_from_text("num_sensors 42\n"), InvalidArgument);
  EXPECT_THROW((void)config_from_text("bogus = 1\n"), InvalidArgument);
}

TEST(ConfigIo, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/wrsn_config_test.cfg";
  SimConfig cfg;
  cfg.num_rvs = 5;
  cfg.radio.listen_duty_cycle = 0.07;
  save_config(path, cfg);
  const SimConfig back = load_config(path);
  EXPECT_EQ(back.num_rvs, 5u);
  EXPECT_DOUBLE_EQ(back.radio.listen_duty_cycle, 0.07);
  std::remove(path.c_str());
}

TEST(ConfigIo, MissingFileThrows) {
  EXPECT_THROW((void)load_config("/no/such/dir/file.cfg"), InvalidArgument);
}

TEST(ConfigIo, EveryKeyRoundTrips) {
  // Serialize, parse back, and compare key-by-key: catches any handler whose
  // getter and setter disagree (including future additions).
  const SimConfig cfg;  // defaults
  const SimConfig back = config_from_text(config_to_text(cfg));
  for (const std::string& key : config_keys()) {
    EXPECT_EQ(config_get(cfg, key), config_get(back, key)) << "key " << key;
  }
}

TEST(ConfigIo, EverySetterIsObservableThroughItsGetter) {
  // Setting a numeric key to a distinctive value must be readable back.
  for (const std::string& key : config_keys()) {
    SimConfig cfg;
    const std::string before = config_get(cfg, key);
    // Skip enum/bool keys; they are covered by SetParsesEveryKind.
    if (before == "true" || before == "false") continue;
    bool numeric = !before.empty();
    for (char c : before) {
      if (!(std::isdigit(static_cast<unsigned char>(c)) || c == '.' || c == '-' ||
            c == '+' || c == 'e')) {
        numeric = false;
      }
    }
    if (!numeric) continue;
    try {
      config_set(cfg, key, "0.125");
      EXPECT_EQ(config_get(cfg, key), "0.125") << "key " << key;
    } catch (const InvalidArgument&) {
      // Integer-valued key: use an integer probe instead.
      config_set(cfg, key, "7");
      EXPECT_EQ(config_get(cfg, key), "7") << "key " << key;
    }
  }
}

TEST(ConfigIo, RoundTripPreservesValidation) {
  const SimConfig cfg = config_from_text(config_to_text(SimConfig{}));
  EXPECT_NO_THROW(cfg.validate());
}

}  // namespace
}  // namespace wrsn
