#include <gtest/gtest.h>

#include "obs/telemetry.hpp"
#include "sim/events.hpp"
#include "sim/world.hpp"

namespace wrsn {
namespace {

TEST(EventQueue, EmptyInitially) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueue, OrdersByTime) {
  EventQueue q;
  q.push(5.0, EventKind::kSlotRotation);
  q.push(1.0, EventKind::kTargetMove, 3);
  q.push(3.0, EventKind::kSensorCrossing, 7, 2);
  EXPECT_EQ(q.size(), 3u);
  EXPECT_DOUBLE_EQ(q.pop().time, 1.0);
  EXPECT_DOUBLE_EQ(q.pop().time, 3.0);
  EXPECT_DOUBLE_EQ(q.pop().time, 5.0);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, FifoTieBreakAtEqualTimes) {
  EventQueue q;
  q.push(2.0, EventKind::kTargetMove, 0);
  q.push(2.0, EventKind::kTargetMove, 1);
  q.push(2.0, EventKind::kTargetMove, 2);
  EXPECT_EQ(q.pop().subject, 0u);
  EXPECT_EQ(q.pop().subject, 1u);
  EXPECT_EQ(q.pop().subject, 2u);
}

TEST(EventQueue, CarriesPayload) {
  EventQueue q;
  q.push(1.5, EventKind::kRvArrival, 2, 9);
  const Event e = q.pop();
  EXPECT_EQ(e.kind, EventKind::kRvArrival);
  EXPECT_EQ(e.subject, 2u);
  EXPECT_EQ(e.epoch, 9u);
  EXPECT_DOUBLE_EQ(e.time, 1.5);
}

TEST(EventQueue, TopDoesNotPop) {
  EventQueue q;
  q.push(1.0, EventKind::kSimEnd);
  EXPECT_DOUBLE_EQ(q.top().time, 1.0);
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, InterleavedPushPop) {
  EventQueue q;
  q.push(10.0, EventKind::kSimEnd);
  q.push(1.0, EventKind::kSlotRotation);
  EXPECT_DOUBLE_EQ(q.pop().time, 1.0);
  q.push(5.0, EventKind::kSlotRotation);
  q.push(0.5, EventKind::kSlotRotation);
  EXPECT_DOUBLE_EQ(q.pop().time, 0.5);
  EXPECT_DOUBLE_EQ(q.pop().time, 5.0);
  EXPECT_DOUBLE_EQ(q.pop().time, 10.0);
}

TEST(EventQueue, EqualTimeMixedKindsPopInInsertionOrder) {
  // Determinism across the whole loop rests on this: simultaneous events of
  // DIFFERENT kinds fire in insertion order, not in kind or subject order.
  EventQueue q;
  q.push(7.0, EventKind::kRvChargeDone, 1, 4);
  q.push(7.0, EventKind::kSlotRotation);
  q.push(7.0, EventKind::kSensorCrossing, 9, 2);
  q.push(7.0, EventKind::kTargetMove, 0);
  q.push(7.0, EventKind::kMetricsSample);
  EXPECT_EQ(q.pop().kind, EventKind::kRvChargeDone);
  EXPECT_EQ(q.pop().kind, EventKind::kSlotRotation);
  EXPECT_EQ(q.pop().kind, EventKind::kSensorCrossing);
  EXPECT_EQ(q.pop().kind, EventKind::kTargetMove);
  EXPECT_EQ(q.pop().kind, EventKind::kMetricsSample);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, StaleEpochEventsAreDiscardedAndCounted) {
  // All four epoch-guarded kinds (sensor crossing + the three RV events)
  // must be dropped on pop when their epoch no longer matches the subject's,
  // counted under events/stale-discarded, and never handled or traced.
  SimConfig cfg;
  cfg.num_sensors = 10;
  cfg.num_targets = 0;  // no monitoring, no target moves
  cfg.num_rvs = 1;
  cfg.field_side = meters(50.0);
  cfg.sim_duration = hours(1.0);
  cfg.seed = 77;
  World w(cfg);
  obs::TelemetryRegistry registry;
  w.set_telemetry(&registry);
  std::vector<World::TraceEvent> trace;
  w.set_tracer([&trace](const World::TraceEvent& ev) { trace.push_back(ev); });

  // Epoch 999 matches no live subject epoch.
  w.push_event_for_test(1.0, EventKind::kSensorCrossing, 0, 999);
  w.push_event_for_test(1.0, EventKind::kRvArrival, 0, 999);
  w.push_event_for_test(1.0, EventKind::kRvChargeDone, 0, 999);
  w.push_event_for_test(1.0, EventKind::kRvBaseChargeDone, 0, 999);
  w.run_until(Second{2.0});  // before any genuine event is due

  EXPECT_EQ(registry.counter("events/stale-discarded").value(), 4u);
  EXPECT_EQ(w.events_processed(), 0u);
  EXPECT_TRUE(trace.empty());
}

TEST(EventQueue, LargeVolumeStaysSorted) {
  EventQueue q;
  // Pseudo-random insertion order.
  std::uint64_t x = 88172645463325252ULL;
  for (int i = 0; i < 10000; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    q.push(static_cast<double>(x % 100000) / 7.0, EventKind::kSensorCrossing, i);
  }
  double prev = -1.0;
  while (!q.empty()) {
    const double t = q.pop().time;
    EXPECT_GE(t, prev);
    prev = t;
  }
}

}  // namespace
}  // namespace wrsn
