#include <gtest/gtest.h>

#include "sim/events.hpp"

namespace wrsn {
namespace {

TEST(EventQueue, EmptyInitially) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueue, OrdersByTime) {
  EventQueue q;
  q.push(5.0, EventKind::kSlotRotation);
  q.push(1.0, EventKind::kTargetMove, 3);
  q.push(3.0, EventKind::kSensorCrossing, 7, 2);
  EXPECT_EQ(q.size(), 3u);
  EXPECT_DOUBLE_EQ(q.pop().time, 1.0);
  EXPECT_DOUBLE_EQ(q.pop().time, 3.0);
  EXPECT_DOUBLE_EQ(q.pop().time, 5.0);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, FifoTieBreakAtEqualTimes) {
  EventQueue q;
  q.push(2.0, EventKind::kTargetMove, 0);
  q.push(2.0, EventKind::kTargetMove, 1);
  q.push(2.0, EventKind::kTargetMove, 2);
  EXPECT_EQ(q.pop().subject, 0u);
  EXPECT_EQ(q.pop().subject, 1u);
  EXPECT_EQ(q.pop().subject, 2u);
}

TEST(EventQueue, CarriesPayload) {
  EventQueue q;
  q.push(1.5, EventKind::kRvArrival, 2, 9);
  const Event e = q.pop();
  EXPECT_EQ(e.kind, EventKind::kRvArrival);
  EXPECT_EQ(e.subject, 2u);
  EXPECT_EQ(e.epoch, 9u);
  EXPECT_DOUBLE_EQ(e.time, 1.5);
}

TEST(EventQueue, TopDoesNotPop) {
  EventQueue q;
  q.push(1.0, EventKind::kSimEnd);
  EXPECT_DOUBLE_EQ(q.top().time, 1.0);
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, InterleavedPushPop) {
  EventQueue q;
  q.push(10.0, EventKind::kSimEnd);
  q.push(1.0, EventKind::kSlotRotation);
  EXPECT_DOUBLE_EQ(q.pop().time, 1.0);
  q.push(5.0, EventKind::kSlotRotation);
  q.push(0.5, EventKind::kSlotRotation);
  EXPECT_DOUBLE_EQ(q.pop().time, 0.5);
  EXPECT_DOUBLE_EQ(q.pop().time, 5.0);
  EXPECT_DOUBLE_EQ(q.pop().time, 10.0);
}

TEST(EventQueue, LargeVolumeStaysSorted) {
  EventQueue q;
  // Pseudo-random insertion order.
  std::uint64_t x = 88172645463325252ULL;
  for (int i = 0; i < 10000; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    q.push(static_cast<double>(x % 100000) / 7.0, EventKind::kSensorCrossing, i);
  }
  double prev = -1.0;
  while (!q.empty()) {
    const double t = q.pop().time;
    EXPECT_GE(t, prev);
    prev = t;
  }
}

}  // namespace
}  // namespace wrsn
