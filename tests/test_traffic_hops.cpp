// Delivery hop accounting and the self-discharge model.
#include <gtest/gtest.h>

#include "net/graph.hpp"
#include "net/routing.hpp"
#include "net/traffic.hpp"
#include "sim/world.hpp"

namespace wrsn {
namespace {

class HopsTest : public ::testing::Test {
 protected:
  // Line: s0 -- s1 -- s2 -- BS, 10 m spacing.
  void SetUp() override {
    graph_ = CommGraph({{0, 0}, {10, 0}, {20, 0}}, Vec2{30, 0}, 12.0);
    positions_ = {{0, 0}, {10, 0}, {20, 0}, {30, 0}};
    tree_ = build(std::vector<bool>(3, true));
    traffic_.reset(3);
  }

  [[nodiscard]] RouteTable build(const std::vector<bool>& usable) const {
    RouteTable table;
    const RoutingBuildInput in{&graph_, &positions_, &usable};
    RoutingRegistry::instance().create("shortest_path")->build(in, table);
    return table;
  }

  CommGraph graph_;
  std::vector<Vec2> positions_;
  RouteTable tree_;
  TrafficModel traffic_;
};

TEST_F(HopsTest, SingleSourceHops) {
  traffic_.add_source(tree_, 0, 1.0);  // 3 hops to the BS
  EXPECT_DOUBLE_EQ(traffic_.average_delivery_hops(), 3.0);
}

TEST_F(HopsTest, RateWeightedMean) {
  traffic_.add_source(tree_, 0, 1.0);  // 3 hops
  traffic_.add_source(tree_, 2, 3.0);  // 1 hop
  // (1*3 + 3*1) / 4 = 1.5
  EXPECT_DOUBLE_EQ(traffic_.average_delivery_hops(), 1.5);
}

TEST_F(HopsTest, UnreachableSourcesExcluded) {
  const RouteTable broken = build({true, false, true});
  traffic_.add_source(broken, 0, 1.0);  // unreachable
  EXPECT_DOUBLE_EQ(traffic_.average_delivery_hops(), 0.0);
  traffic_.add_source(broken, 2, 1.0);  // 1 hop
  EXPECT_DOUBLE_EQ(traffic_.average_delivery_hops(), 1.0);
}

TEST_F(HopsTest, EmptyModelIsZero) {
  EXPECT_DOUBLE_EQ(traffic_.average_delivery_hops(), 0.0);
}

TEST(HopsMetric, ReportedByWorldAtTableIIScale) {
  SimConfig cfg;
  cfg.sim_duration = days(1.0);
  World w(cfg);
  const auto r = w.run();
  // At d_c = 12 m over a 200 m field, routes to the central BS average
  // several hops.
  EXPECT_GT(r.avg_delivery_hops, 3.0);
  EXPECT_LT(r.avg_delivery_hops, 15.0);
}

TEST(SelfDischarge, AddsExpectedConstantDrain) {
  SimConfig base;
  base.num_sensors = 30;
  base.num_targets = 0;  // no sensing activity
  base.field_side = meters(50.0);
  base.sim_duration = days(5.0);
  base.radio.listen_duty_cycle = 0.0;
  SimConfig leaky = base;
  leaky.battery.self_discharge_per_day = 0.01;  // 1 %/day

  World a(base), b(leaky);
  a.run();
  b.run();
  double lost_base = 0.0, lost_leaky = 0.0;
  for (SensorId s = 0; s < 30; ++s) {
    lost_base += a.network().sensor(s).battery.demand().value();
    lost_leaky += b.network().sensor(s).battery.demand().value();
  }
  // The leaky network lost an extra ~1%/day * 5 days * capacity per sensor.
  const double expected_extra =
      0.01 * 5.0 * base.battery.capacity.value() * 30.0;
  EXPECT_NEAR(lost_leaky - lost_base, expected_extra, expected_extra * 0.05);
}

TEST(SelfDischarge, ConfigValidation) {
  SimConfig cfg;
  cfg.battery.self_discharge_per_day = 1.0;
  EXPECT_THROW(cfg.validate(), InvalidArgument);
  cfg.battery.self_discharge_per_day = -0.1;
  EXPECT_THROW(cfg.validate(), InvalidArgument);
}

}  // namespace
}  // namespace wrsn
