// Replica driver: mean_report's cross-replica aggregation (including the
// p99-of-max latency tail) and run_replicas' determinism — the same seed
// must produce byte-identical reports no matter how the replicas are
// scheduled onto worker threads.
#include <gtest/gtest.h>

#include <vector>

#include "core/thread_pool.hpp"
#include "sim/metrics.hpp"
#include "sim/runner.hpp"

namespace {

using namespace wrsn;

SimConfig fast_config() {
  SimConfig cfg;
  cfg.num_sensors = 80;
  cfg.num_targets = 6;
  cfg.num_rvs = 2;
  cfg.sim_duration = days(2.0);
  cfg.seed = 0xabcdef12ULL;
  return cfg;
}

TEST(MeanReport, AveragesAndP99MaxLatency) {
  std::vector<MetricsReport> reports(4);
  for (std::size_t i = 0; i < reports.size(); ++i) {
    reports[i].coverage_ratio = 0.5 + 0.1 * static_cast<double>(i);
    reports[i].max_request_latency = Second{100.0 * static_cast<double>(i + 1)};
    reports[i].sensor_deaths = i;
  }
  const MetricsReport mean = mean_report(reports);
  EXPECT_NEAR(mean.coverage_ratio, 0.65, 1e-12);
  // Worst case across replicas...
  EXPECT_DOUBLE_EQ(mean.max_request_latency.value(), 400.0);
  // ...and its p99 via the nearest-rank convention on the sorted maxima
  // {100, 200, 300, 400}: index round(0.99 * 3) = 3.
  EXPECT_DOUBLE_EQ(mean.p99_max_request_latency.value(), 400.0);
  EXPECT_EQ(mean.sensor_deaths, 2u);  // round(mean{0,1,2,3}) = round(1.5)
}

TEST(MeanReport, P99MaxEqualsMaxForSingleReplica) {
  std::vector<MetricsReport> reports(1);
  reports[0].max_request_latency = Second{77.0};
  const MetricsReport mean = mean_report(reports);
  EXPECT_DOUBLE_EQ(mean.p99_max_request_latency.value(), 77.0);
}

TEST(MeanReport, P99MaxPicksNearestRank) {
  // 100 replicas with maxima 1..100: index round(0.99 * 99) = 98 -> 99.
  std::vector<MetricsReport> reports(100);
  for (std::size_t i = 0; i < reports.size(); ++i) {
    reports[i].max_request_latency = Second{static_cast<double>(i + 1)};
  }
  const MetricsReport mean = mean_report(reports);
  EXPECT_DOUBLE_EQ(mean.p99_max_request_latency.value(), 99.0);
  EXPECT_DOUBLE_EQ(mean.max_request_latency.value(), 100.0);
}

TEST(RunReplicas, DeterministicAcrossPoolSizes) {
  const SimConfig cfg = fast_config();
  const std::size_t replicas = 3;

  const auto serial = run_replicas(cfg, replicas, nullptr);
  ASSERT_EQ(serial.size(), replicas);

  ThreadPool pool1(1);
  const auto with_one = run_replicas(cfg, replicas, &pool1);
  ThreadPool pool4(4);
  const auto with_four = run_replicas(cfg, replicas, &pool4);

  for (std::size_t i = 0; i < replicas; ++i) {
    // Byte-identical reports: the JSON dump pins every field.
    EXPECT_EQ(to_json(serial[i]), to_json(with_one[i])) << "replica " << i;
    EXPECT_EQ(to_json(serial[i]), to_json(with_four[i])) << "replica " << i;
  }
  // And so is the aggregate.
  EXPECT_EQ(to_json(mean_report(serial)), to_json(mean_report(with_four)));
}

TEST(RunReplicas, ReplicasDifferButRerunsDoNot) {
  const SimConfig cfg = fast_config();
  const auto a = run_replicas(cfg, 2, nullptr);
  const auto b = run_replicas(cfg, 2, nullptr);
  EXPECT_EQ(to_json(a[0]), to_json(b[0]));
  EXPECT_EQ(to_json(a[1]), to_json(b[1]));
  // Distinct seeds (config.seed + i) should not produce the same world.
  EXPECT_NE(to_json(a[0]), to_json(a[1]));
}

}  // namespace
