#include <gtest/gtest.h>

#include <set>

#include "activity/clustering.hpp"
#include "core/rng.hpp"
#include "net/deployment.hpp"

namespace wrsn {
namespace {

TEST(Clustering, SimpleTwoTargets) {
  // Two targets far apart, two sensors near each.
  const std::vector<Vec2> sensors = {{0, 0}, {1, 0}, {50, 50}, {51, 50}};
  const std::vector<Vec2> targets = {{0.5, 0.0}, {50.5, 50.0}};
  const ClusterSet cs = balanced_clustering(sensors, targets, 8.0);
  EXPECT_EQ(cs.members[0], (std::vector<SensorId>{0, 1}));
  EXPECT_EQ(cs.members[1], (std::vector<SensorId>{2, 3}));
  EXPECT_EQ(cs.assignment[0], 0u);
  EXPECT_EQ(cs.assignment[2], 1u);
  EXPECT_EQ(cs.imbalance(), 0u);
}

TEST(Clustering, SharedSensorsBalanceAcrossTargets) {
  // Four sensors all covering two coincident-ish targets: balanced split 2/2.
  const std::vector<Vec2> sensors = {{0, 0}, {1, 0}, {0, 1}, {1, 1}};
  const std::vector<Vec2> targets = {{0.5, 0.4}, {0.5, 0.6}};
  const ClusterSet cs = balanced_clustering(sensors, targets, 8.0);
  EXPECT_EQ(cs.cluster_size(0), 2u);
  EXPECT_EQ(cs.cluster_size(1), 2u);
  EXPECT_EQ(cs.imbalance(), 0u);
}

TEST(Clustering, EachSensorAssignedToAtMostOneTarget) {
  Xoshiro256 rng(1);
  const auto sensors = deploy_uniform(300, 100.0, rng);
  const auto targets = deploy_uniform(10, 100.0, rng);
  const ClusterSet cs = balanced_clustering(sensors, targets, 10.0);
  std::set<SensorId> seen;
  for (TargetId t = 0; t < cs.num_clusters(); ++t) {
    for (SensorId s : cs.members[t]) {
      EXPECT_TRUE(seen.insert(s).second) << "sensor " << s << " in two clusters";
      EXPECT_EQ(cs.assignment[s], t);
    }
  }
}

TEST(Clustering, OnlyCoveringSensorsAssigned) {
  Xoshiro256 rng(2);
  const auto sensors = deploy_uniform(200, 100.0, rng);
  const auto targets = deploy_uniform(8, 100.0, rng);
  const double r = 9.0;
  const ClusterSet cs = balanced_clustering(sensors, targets, r);
  for (TargetId t = 0; t < cs.num_clusters(); ++t) {
    for (SensorId s : cs.members[t]) {
      EXPECT_LE(distance(sensors[s], targets[t]), r);
    }
  }
  // Every covering sensor IS assigned somewhere (the pool A is exhausted).
  for (SensorId s = 0; s < sensors.size(); ++s) {
    bool covers_any = false;
    for (const Vec2& tp : targets) {
      if (distance(sensors[s], tp) <= r) covers_any = true;
    }
    EXPECT_EQ(cs.assignment[s] != kInvalidId, covers_any) << "sensor " << s;
  }
}

TEST(Clustering, LoadsCountDetectableTargets) {
  const std::vector<Vec2> sensors = {{0, 0}, {100, 100}};
  const std::vector<Vec2> targets = {{1, 0}, {0, 1}, {99, 100}};
  const ClusterSet cs = balanced_clustering(sensors, targets, 5.0);
  EXPECT_EQ(cs.loads[0], 2u);
  EXPECT_EQ(cs.loads[1], 1u);
}

TEST(Clustering, EligibilityMaskExcludesDeadSensors) {
  const std::vector<Vec2> sensors = {{0, 0}, {1, 0}};
  const std::vector<Vec2> targets = {{0.5, 0}};
  const std::vector<bool> eligible = {false, true};
  const ClusterSet cs = balanced_clustering(sensors, targets, 8.0, eligible);
  EXPECT_EQ(cs.members[0], (std::vector<SensorId>{1}));
  EXPECT_EQ(cs.assignment[0], kInvalidId);
  EXPECT_EQ(cs.loads[0], 0u);
}

TEST(Clustering, EmptyTargets) {
  const std::vector<Vec2> sensors = {{0, 0}};
  const ClusterSet cs = balanced_clustering(sensors, {}, 8.0);
  EXPECT_EQ(cs.num_clusters(), 0u);
  EXPECT_EQ(cs.assignment[0], kInvalidId);
}

TEST(Clustering, EmptySensors) {
  const std::vector<Vec2> targets = {{0, 0}};
  const ClusterSet cs = balanced_clustering({}, targets, 8.0);
  EXPECT_EQ(cs.num_clusters(), 1u);
  EXPECT_TRUE(cs.members[0].empty());
}

TEST(Clustering, BalancedBeatsNaiveOnOverlap) {
  // Two overlapping targets with 6 sensors covering both: naive piles all on
  // target 0, balanced splits 3/3.
  std::vector<Vec2> sensors;
  for (int i = 0; i < 6; ++i) sensors.push_back({static_cast<double>(i), 0.0});
  const std::vector<Vec2> targets = {{2.5, 1.0}, {2.5, -1.0}};
  const ClusterSet balanced = balanced_clustering(sensors, targets, 10.0);
  const ClusterSet naive = naive_clustering(sensors, targets, 10.0);
  EXPECT_EQ(balanced.imbalance(), 0u);
  EXPECT_EQ(naive.cluster_size(0), 6u);
  EXPECT_EQ(naive.cluster_size(1), 0u);
  EXPECT_LE(balanced.imbalance(), naive.imbalance());
}

// Property sweep: on random instances, balanced clustering never loses to
// naive clustering on the imbalance metric, and both assign the identical
// sensor pool.
class ClusteringProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ClusteringProperty, BalanceAndPoolInvariants) {
  Xoshiro256 rng(GetParam());
  const std::size_t n = 50 + rng.uniform_int(250);
  const std::size_t m = 2 + rng.uniform_int(14);
  const double side = 60.0 + rng.uniform(0.0, 140.0);
  const double r = 5.0 + rng.uniform(0.0, 15.0);
  const auto sensors = deploy_uniform(n, side, rng);
  const auto targets = deploy_uniform(m, side, rng);

  const ClusterSet balanced = balanced_clustering(sensors, targets, r);
  const ClusterSet naive = naive_clustering(sensors, targets, r);

  // Same pool of assigned sensors.
  std::size_t nb = 0, nn = 0;
  for (SensorId s = 0; s < n; ++s) {
    nb += balanced.assignment[s] != kInvalidId;
    nn += naive.assignment[s] != kInvalidId;
  }
  EXPECT_EQ(nb, nn);

  // Balanced is never worse on imbalance.
  EXPECT_LE(balanced.imbalance(), naive.imbalance());

  // Geometric validity.
  for (TargetId t = 0; t < m; ++t) {
    for (SensorId s : balanced.members[t]) {
      EXPECT_LE(distance(sensors[s], targets[t]), r);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, ClusteringProperty,
                         ::testing::Range<std::uint64_t>(0, 25));

TEST(Clustering, DeterministicOutput) {
  Xoshiro256 rng(77);
  const auto sensors = deploy_uniform(150, 90.0, rng);
  const auto targets = deploy_uniform(6, 90.0, rng);
  const ClusterSet a = balanced_clustering(sensors, targets, 9.0);
  const ClusterSet b = balanced_clustering(sensors, targets, 9.0);
  EXPECT_EQ(a.assignment, b.assignment);
  EXPECT_EQ(a.members, b.members);
}

}  // namespace
}  // namespace wrsn
