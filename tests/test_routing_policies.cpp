// Registry contract and forest validity for every registered routing policy:
// whatever scheme a policy encodes, the result must be a BS-rooted next-hop
// forest (acyclic, every reachable node's chain ends at the base station,
// distances telescope) and build() must be a deterministic pure function of
// its input — the snapshot codec relies on that to restore routing by
// re-running build() on the serialized alive mask.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "core/error.hpp"
#include "core/rng.hpp"
#include "net/deployment.hpp"
#include "net/graph.hpp"
#include "net/routing.hpp"

namespace wrsn {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

struct Instance {
  CommGraph graph;
  std::vector<Vec2> positions;  // BS last
  std::vector<bool> usable;
};

Instance make_instance(std::uint64_t seed, std::size_t n, double side,
                       double range, bool kill_some) {
  Xoshiro256 rng(seed);
  Instance inst;
  const Vec2 bs{side / 2.0, side / 2.0};
  std::vector<Vec2> sensors = deploy_uniform(n, side, rng);
  inst.graph = CommGraph(sensors, bs, range);
  inst.positions = std::move(sensors);
  inst.positions.push_back(bs);
  inst.usable.assign(n, true);
  if (kill_some) {
    for (std::size_t i = 0; i < n; i += 5) inst.usable[i] = false;
  }
  return inst;
}

RouteTable build_with(const std::string& policy, const Instance& inst) {
  RouteTable table;
  const RoutingBuildInput in{&inst.graph, &inst.positions, &inst.usable};
  RoutingRegistry::instance().create(policy)->build(in, table);
  return table;
}

class RoutingPolicies : public testing::TestWithParam<std::string> {};

TEST(RoutingRegistry, ShortestPathIsTheDefaultAndListedFirst) {
  const auto names = routing_names();
  ASSERT_FALSE(names.empty());
  EXPECT_EQ(names.front(), "shortest_path");
  EXPECT_GE(names.size(), 4u);
  for (const auto& name : names) {
    EXPECT_TRUE(RoutingRegistry::instance().contains(name));
    EXPECT_FALSE(RoutingRegistry::instance().summary(name).empty());
    EXPECT_NE(RoutingRegistry::instance().create(name), nullptr);
  }
}

TEST(RoutingRegistry, UnknownNameErrorListsEveryRegisteredPolicy) {
  try {
    (void)RoutingRegistry::instance().create("carrier_pigeon");
    FAIL() << "unknown policy name was accepted";
  } catch (const InvalidArgument& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("carrier_pigeon"), std::string::npos) << message;
    for (const auto& name : routing_names()) {
      EXPECT_NE(message.find(name), std::string::npos) << message;
    }
  }
}

TEST(RoutingRegistry, DuplicateAndEmptyRegistrationRejected) {
  auto factory = []() -> std::unique_ptr<RoutingPolicy> { return nullptr; };
  EXPECT_THROW(RoutingRegistry::instance().add("shortest_path", "dup", factory),
               InvalidArgument);
  EXPECT_THROW(RoutingRegistry::instance().add("", "anonymous", factory),
               InvalidArgument);
}

TEST_P(RoutingPolicies, BuildsAcyclicForestRootedAtTheBase) {
  const Instance inst = make_instance(101, 80, 70.0, 14.0, /*kill_some=*/true);
  const RouteTable table = build_with(GetParam(), inst);
  const std::size_t bs = inst.graph.base_station_index();
  ASSERT_TRUE(table.built());
  ASSERT_EQ(table.num_nodes(), inst.graph.num_nodes());
  EXPECT_EQ(table.next_hop(bs), kInvalidId);
  for (std::size_t v = 0; v < 80; ++v) {
    if (!inst.usable[v]) {
      EXPECT_FALSE(table.reachable(v)) << "dead node " << v << " routed";
      continue;
    }
    if (!table.reachable(v)) {
      EXPECT_EQ(table.next_hop(v), kInvalidId);
      EXPECT_TRUE(std::isinf(table.distance_to_base(v)));
      continue;
    }
    // The parent chain must terminate at the BS within num_nodes steps
    // (anything longer means a cycle), stepping only over usable relays.
    std::size_t node = v;
    std::size_t steps = 0;
    while (node != bs) {
      ASSERT_LT(steps++, table.num_nodes()) << "cycle reached from " << v;
      const std::size_t next = table.next_hop(node);
      ASSERT_NE(next, kInvalidId) << "chain from " << v << " dead-ends";
      ASSERT_TRUE(next == bs || inst.usable[next])
          << "chain from " << v << " crosses dead node " << next;
      node = next;
    }
  }
}

TEST_P(RoutingPolicies, DistancesTelescopeAlongParentChains) {
  const Instance inst = make_instance(103, 60, 60.0, 14.0, /*kill_some=*/false);
  const RouteTable table = build_with(GetParam(), inst);
  const std::size_t bs = inst.graph.base_station_index();
  EXPECT_DOUBLE_EQ(table.distance_to_base(bs), 0.0);
  for (std::size_t v = 0; v < 60; ++v) {
    if (!table.reachable(v)) continue;
    const std::size_t p = table.next_hop(v);
    const double hop = distance(inst.positions[v], inst.positions[p]);
    EXPECT_NEAR(table.hop_length(v), hop, 1e-9);
    EXPECT_NEAR(table.distance_to_base(v), table.distance_to_base(p) + hop,
                1e-9);
    // Every hop must be physically transmittable.
    EXPECT_LE(hop, 14.0 + 1e-9);
  }
}

TEST_P(RoutingPolicies, BuildIsDeterministic) {
  const Instance inst = make_instance(105, 70, 65.0, 13.0, /*kill_some=*/true);
  const RouteTable a = build_with(GetParam(), inst);
  const RouteTable b = build_with(GetParam(), inst);
  ASSERT_EQ(a.num_nodes(), b.num_nodes());
  for (std::size_t v = 0; v < a.num_nodes(); ++v) {
    EXPECT_EQ(a.next_hop(v), b.next_hop(v)) << "node " << v;
    EXPECT_EQ(std::isinf(a.distance_to_base(v)), std::isinf(b.distance_to_base(v)));
    if (!std::isinf(a.distance_to_base(v))) {
      EXPECT_DOUBLE_EQ(a.distance_to_base(v), b.distance_to_base(v));
    }
  }
}

TEST_P(RoutingPolicies, ConnectedInstanceReachesEveryUsableNode) {
  // A dense line is connected under every scheme: no policy may strand a
  // usable node that Dijkstra can reach.
  const std::vector<Vec2> sensors = {{0, 0}, {8, 0}, {16, 0}, {24, 0}};
  Instance inst;
  inst.graph = CommGraph(sensors, Vec2{32, 0}, 10.0);
  inst.positions = sensors;
  inst.positions.push_back({32, 0});
  inst.usable.assign(4, true);
  const RouteTable table = build_with(GetParam(), inst);
  for (std::size_t v = 0; v < 4; ++v) {
    EXPECT_TRUE(table.reachable(v)) << "node " << v;
    EXPECT_LT(table.distance_to_base(v), kInf);
  }
}

std::string policy_name(const testing::TestParamInfo<std::string>& param) {
  return param.param;
}

INSTANTIATE_TEST_SUITE_P(AllRegistered, RoutingPolicies,
                         testing::ValuesIn(routing_names()), policy_name);

TEST(ShortestPathPolicy, MatchesFreeDijkstra) {
  const Instance inst = make_instance(107, 90, 75.0, 14.0, /*kill_some=*/true);
  const RouteTable table = build_with("shortest_path", inst);
  const ShortestPaths sp =
      dijkstra(inst.graph, inst.graph.base_station_index(), inst.usable);
  for (std::size_t v = 0; v < inst.graph.num_nodes(); ++v) {
    EXPECT_EQ(table.next_hop(v), sp.parent[v]) << "node " << v;
    if (std::isinf(sp.dist[v])) {
      EXPECT_TRUE(std::isinf(table.distance_to_base(v)));
    } else {
      EXPECT_DOUBLE_EQ(table.distance_to_base(v), sp.dist[v]);
    }
  }
}

TEST(AlternativePolicies, BackbonesAreNeverShorterThanShortestPath) {
  const Instance inst = make_instance(109, 80, 70.0, 14.0, /*kill_some=*/false);
  const RouteTable sp = build_with("shortest_path", inst);
  for (const std::string& name : routing_names()) {
    if (name == "shortest_path") continue;
    const RouteTable alt = build_with(name, inst);
    for (std::size_t v = 0; v < 80; ++v) {
      if (!alt.reachable(v)) continue;
      ASSERT_TRUE(sp.reachable(v));
      // Route distance through any other scheme is bounded below by the
      // true shortest path (alt distances are physical path lengths).
      EXPECT_GE(alt.distance_to_base(v) + 1e-9, sp.distance_to_base(v))
          << name << " node " << v;
    }
  }
}

TEST(AlternativePolicies, GreedyGeoRecoversFromLocalMinimaOnConnectedGraphs) {
  // A BS-centred ring with a gap forces perimeter repair: pure greedy would
  // strand nodes whose every neighbour is farther from the BS than they are.
  std::vector<Vec2> sensors;
  for (int i = 0; i < 12; ++i) {
    const double a = 2.0 * 3.14159265358979323846 * i / 14.0;  // 12/14 arc
    sensors.push_back({30.0 + 20.0 * std::cos(a), 30.0 + 20.0 * std::sin(a)});
  }
  sensors.push_back({30.0 + 10.0, 30.0});  // bridge towards the BS
  Instance inst;
  inst.graph = CommGraph(sensors, Vec2{30, 30}, 12.0);
  inst.positions = sensors;
  inst.positions.push_back({30, 30});
  inst.usable.assign(sensors.size(), true);
  const RouteTable greedy = build_with("greedy_geo", inst);
  const RouteTable sp = build_with("shortest_path", inst);
  for (std::size_t v = 0; v < sensors.size(); ++v) {
    EXPECT_EQ(greedy.reachable(v), sp.reachable(v)) << "node " << v;
  }
}

}  // namespace
}  // namespace wrsn
