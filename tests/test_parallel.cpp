// Unit tests for the deterministic shard executor (core/parallel.hpp): fixed
// thread-count-independent shard plans, disjoint-slot for_shards, and
// reduce_shards folding partials strictly in shard-index order — including
// under adversarial task completion ordering (later shards finish first), the
// case where a completion-order-dependent merge would diverge.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/parallel.hpp"

namespace wrsn {
namespace {

TEST(ShardPlan, CoversRangeContiguously) {
  for (const std::size_t n : {0u, 1u, 5u, 16u, 17u, 100u}) {
    for (const std::size_t grain : {1u, 4u, 16u, 1000u}) {
      const auto shards = shard_plan(n, grain);
      std::size_t expect_begin = 0;
      for (const ShardRange& r : shards) {
        EXPECT_EQ(r.begin, expect_begin);
        EXPECT_GT(r.end, r.begin);
        EXPECT_LE(r.end - r.begin, grain);
        expect_begin = r.end;
      }
      EXPECT_EQ(expect_begin, n);
      if (n == 0) EXPECT_TRUE(shards.empty());
    }
  }
}

TEST(ShardPlan, BoundariesDependOnlyOnNAndGrain) {
  // The plan is a pure function of (n, grain); this is what makes per-shard
  // partials identical no matter how many workers exist.
  EXPECT_EQ(shard_plan(100, 7).size(), shard_plan(100, 7).size());
  const auto a = shard_plan(100, 7);
  const auto b = shard_plan(100, 7);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].begin, b[i].begin);
    EXPECT_EQ(a[i].end, b[i].end);
  }
}

TEST(ResolveThreads, ExplicitValuePassesThrough) {
  ::unsetenv("WRSN_THREADS");
  EXPECT_EQ(resolve_threads(1), 1u);
  EXPECT_EQ(resolve_threads(7), 7u);
}

TEST(ResolveThreads, AutoWithoutEnvIsSerial) {
  ::unsetenv("WRSN_THREADS");
  EXPECT_EQ(resolve_threads(0), 1u);
}

TEST(ResolveThreads, AutoReadsEnv) {
  ::setenv("WRSN_THREADS", "5", 1);
  EXPECT_EQ(resolve_threads(0), 5u);
  // Explicit config beats the env.
  EXPECT_EQ(resolve_threads(3), 3u);
  // Env value 0 = hardware concurrency (>= 1).
  ::setenv("WRSN_THREADS", "0", 1);
  EXPECT_GE(resolve_threads(0), 1u);
  ::unsetenv("WRSN_THREADS");
}

TEST(ParallelExec, SerialExecutorNeverShards) {
  ParallelExec exec;  // threads == 1
  EXPECT_FALSE(exec.parallel());
  EXPECT_FALSE(exec.should_shard(1u << 20));
  std::size_t calls = 0;
  exec.for_shards(100, [&](std::size_t begin, std::size_t end) {
    ++calls;
    EXPECT_EQ(begin, 0u);
    EXPECT_EQ(end, 100u);
  });
  EXPECT_EQ(calls, 1u);  // one inline body(0, n), no pool
}

TEST(ParallelExec, BelowThresholdRunsInline) {
  ParallelExec exec(4, /*threshold=*/1000);
  EXPECT_TRUE(exec.parallel());
  EXPECT_FALSE(exec.should_shard(999));
  EXPECT_TRUE(exec.should_shard(1000));
}

TEST(ParallelExec, ForShardsFillsDisjointSlotsUnderAdversarialOrdering) {
  ParallelExec exec(4, /*threshold=*/1);
  const std::size_t n = 64;
  std::vector<int> slots(n, -1);
  // Small grain => many shards; early shards sleep longest so completion
  // order is roughly the reverse of shard order.
  exec.for_shards(
      n,
      [&](std::size_t begin, std::size_t end) {
        std::this_thread::sleep_for(std::chrono::microseconds(500 * (n - begin)));
        for (std::size_t i = begin; i < end; ++i) {
          slots[i] = static_cast<int>(i * i);
        }
      },
      /*grain=*/4);
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(slots[i], static_cast<int>(i * i)) << "slot " << i;
  }
}

// Non-associative floating-point reduction: the fold must match a serial
// fold over the same shard plan bit-for-bit, at every thread count, even
// when tasks complete in reverse order.
TEST(ParallelExec, ReduceShardsIsBitStableAcrossThreadCounts) {
  const std::size_t n = 257;
  const std::size_t grain = 16;
  std::vector<double> values(n);
  for (std::size_t i = 0; i < n; ++i) {
    values[i] = 0.1 * static_cast<double>((i * 2654435761u) % 1000) - 37.25;
  }
  auto map = [&](std::size_t begin, std::size_t end) {
    std::this_thread::sleep_for(std::chrono::microseconds(200 * (n - begin)));
    double sum = 0.0;
    for (std::size_t i = begin; i < end; ++i) sum += values[i];
    return sum;
  };
  auto combine = [](double& acc, double part) { acc += part; };

  // Expected: fold the shard partials serially, in shard order.
  double expected = 0.0;
  for (const ShardRange& r : shard_plan(n, grain)) {
    double part = 0.0;
    for (std::size_t i = r.begin; i < r.end; ++i) part += values[i];
    expected += part;
  }

  for (const std::size_t threads : {2u, 3u, 7u}) {
    ParallelExec exec(threads, /*threshold=*/1);
    const double got = exec.reduce_shards(n, 0.0, map, combine, grain);
    EXPECT_EQ(got, expected) << "threads=" << threads;  // bit-exact
  }
}

// Regression: a bool partial must not bit-pack (vector<bool> slots would
// race across adjacent shards and fail to bind).
TEST(ParallelExec, ReduceShardsSupportsBoolPartials) {
  ParallelExec exec(4, /*threshold=*/1);
  const std::size_t n = 100;
  const bool any = exec.reduce_shards(
      n, false,
      [](std::size_t begin, std::size_t end) {
        bool hit = false;
        for (std::size_t i = begin; i < end; ++i) hit = hit || (i == 63);
        return hit;
      },
      [](bool& acc, bool part) { acc = acc || part; },
      /*grain=*/8);
  EXPECT_TRUE(any);
}

TEST(ParallelExec, ShardExceptionPropagates) {
  ParallelExec exec(2, /*threshold=*/1);
  EXPECT_THROW(exec.for_shards(
                   64,
                   [](std::size_t begin, std::size_t) {
                     if (begin >= 32) throw std::runtime_error("boom");
                   },
                   /*grain=*/8),
               std::runtime_error);
  // The pool survives the exception and keeps working.
  std::vector<int> slots(16, 0);
  exec.for_shards(
      16, [&](std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i) slots[i] = 1;
      },
      /*grain=*/2);
  for (int v : slots) EXPECT_EQ(v, 1);
}

TEST(ParallelScope, InstallsAndRestoresNested) {
  EXPECT_EQ(current_parallel(), nullptr);
  ParallelExec outer(1), inner(1);
  {
    ParallelScope a(&outer);
    EXPECT_EQ(current_parallel(), &outer);
    {
      ParallelScope b(&inner);
      EXPECT_EQ(current_parallel(), &inner);
    }
    EXPECT_EQ(current_parallel(), &outer);
  }
  EXPECT_EQ(current_parallel(), nullptr);
}

}  // namespace
}  // namespace wrsn
