#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "core/thread_pool.hpp"

namespace wrsn {
namespace {

TEST(ThreadPool, DefaultSizeIsPositive) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, SubmitReturnsResult) {
  ThreadPool pool(2);
  auto fut = pool.submit([] { return 6 * 7; });
  EXPECT_EQ(fut.get(), 42);
}

TEST(ThreadPool, SubmitVoidTask) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  auto fut = pool.submit([&] { counter.fetch_add(1); });
  fut.get();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPool, ManyTasksAllExecute) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futs;
  for (int i = 0; i < 200; ++i) {
    futs.push_back(pool.submit([&] { counter.fetch_add(1); }));
  }
  for (auto& f : futs) f.get();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPool, ExceptionPropagatesThroughFuture) {
  ThreadPool pool(1);
  auto fut = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(fut.get(), std::runtime_error);
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(3);
  std::vector<int> hits(100, 0);
  pool.parallel_for(100, [&](std::size_t i) { hits[i] = static_cast<int>(i); });
  for (int i = 0; i < 100; ++i) EXPECT_EQ(hits[i], i);
}

TEST(ThreadPool, ParallelForZeroIterationsIsNoop) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](std::size_t) { FAIL() << "must not be called"; });
}

TEST(ThreadPool, ParallelForPropagatesException) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(10,
                                 [](std::size_t i) {
                                   if (i == 3) throw std::runtime_error("bad index");
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, DestructorDrainsPendingTasks) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 50; ++i) {
      (void)pool.submit([&] { counter.fetch_add(1); });
    }
  }  // destructor joins; queued tasks either ran or were dropped post-stop
  // The single worker must have executed at least the task it was running,
  // and no crash/UB may occur. Executed count is <= 50.
  EXPECT_LE(counter.load(), 50);
}

TEST(ThreadPool, SingleThreadPreservesUsability) {
  ThreadPool pool(1);
  int sum = 0;
  std::vector<std::future<int>> futs;
  for (int i = 1; i <= 10; ++i) futs.push_back(pool.submit([i] { return i; }));
  for (auto& f : futs) sum += f.get();
  EXPECT_EQ(sum, 55);
}

}  // namespace
}  // namespace wrsn
