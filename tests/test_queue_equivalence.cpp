// Queue-equivalence suite: the calendar queue must be indistinguishable from
// the binary heap. The pinned total order is strict — (time, then push
// sequence number) with no equal keys — so ANY correct implementation pops
// the exact same Event stream for the same push/pop interleaving; this suite
// checks that property directly (randomized interleavings, equal-time FIFO
// batches, epoch-stale discard emulation) and end-to-end (full simulations
// under both queues x both world engines x faults must produce bit-identical
// reports, traces and battery vectors).
#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "core/error.hpp"
#include "core/rng.hpp"
#include "sim/world.hpp"

namespace wrsn {
namespace {

bool same_event(const Event& a, const Event& b) {
  return a.time == b.time && a.seq == b.seq && a.kind == b.kind &&
         a.subject == b.subject && a.epoch == b.epoch;
}

std::string event_str(const Event& e) {
  std::ostringstream os;
  os << "t=" << e.time << " seq=" << e.seq << " kind=" << kind_name(e.kind)
     << " subject=" << e.subject << " epoch=" << e.epoch;
  return os.str();
}

// Drives both queues through one identical randomized interleaving of pushes
// (with bursts of equal-time events) and pops, asserting the popped streams
// match element-for-element. Also emulates the world's epoch-based lazy
// invalidation: subjects' epochs are bumped mid-stream and stale pops are
// discarded by the same rule on both sides.
void drive_interleaved(std::uint64_t seed) {
  Xoshiro256 rng(seed);
  EventQueue heap(EventQueueImpl::kHeap);
  EventQueue cal(EventQueueImpl::kCalendar);
  std::vector<std::uint64_t> epoch(16, 0);

  double now = 0.0;
  std::size_t pops = 0, stale = 0;
  const std::string what = "seed=" + std::to_string(seed);
  for (int step = 0; step < 5000; ++step) {
    const double roll = rng.uniform(0.0, 1.0);
    if (roll < 0.45 || heap.empty()) {
      // Push a small batch; ~1/3rd of batches share one exact timestamp to
      // exercise the FIFO tie-break, and times may land far ahead (bucket
      // wrap) or just past `now` (cursor-adjacent).
      const std::size_t batch = 1 + static_cast<std::size_t>(rng.uniform(0.0, 4.0));
      const bool equal_time = rng.uniform(0.0, 1.0) < 0.33;
      double t = now + rng.uniform(0.0, rng.uniform(0.0, 1.0) < 0.1 ? 5000.0 : 60.0);
      for (std::size_t b = 0; b < batch; ++b) {
        if (!equal_time) {
          t = now + rng.uniform(0.0, 60.0);
        }
        const std::size_t subject =
            static_cast<std::size_t>(rng.uniform(0.0, 16.0));
        const EventKind kind = static_cast<EventKind>(
            static_cast<std::size_t>(rng.uniform(0.0, 5.0)));
        heap.push(t, kind, subject, epoch[subject]);
        cal.push(t, kind, subject, epoch[subject]);
      }
    } else if (roll < 0.5) {
      // Invalidate one subject: its already-queued events become stale and
      // must be discarded identically on pop from either queue.
      ++epoch[static_cast<std::size_t>(rng.uniform(0.0, 16.0))];
    } else {
      ASSERT_EQ(heap.size(), cal.size()) << what;
      ASSERT_TRUE(same_event(heap.top(), cal.top()))
          << what << "\n  heap top: " << event_str(heap.top())
          << "\n  cal top:  " << event_str(cal.top());
      const Event a = heap.pop();
      const Event b = cal.pop();
      ASSERT_TRUE(same_event(a, b))
          << what << "\n  heap: " << event_str(a) << "\n  cal:  " << event_str(b);
      ASSERT_GE(a.time, now) << what << " time went backwards";
      now = a.time;
      ++pops;
      if (a.epoch != epoch[a.subject]) ++stale;  // same verdict on both sides
    }
  }
  // Drain what is left; order must stay identical down to empty.
  while (!heap.empty()) {
    ASSERT_FALSE(cal.empty()) << what;
    const Event a = heap.pop();
    const Event b = cal.pop();
    ASSERT_TRUE(same_event(a, b))
        << what << " drain\n  heap: " << event_str(a)
        << "\n  cal:  " << event_str(b);
    ASSERT_GE(a.time, now) << what;
    now = a.time;
    ++pops;
  }
  EXPECT_TRUE(cal.empty()) << what;
  EXPECT_GT(pops, 1000u) << what;
  // Sanity on the scenario itself: invalidation actually produced stale pops.
  if (seed % 4 == 0) {
    EXPECT_GT(stale, 0u) << what;
  }
}

TEST(QueueEquivalence, RandomInterleavingsPopIdentically) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    drive_interleaved(seed);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

// Pure equal-time stress: thousands of events at a handful of distinct
// timestamps must come back in exact push order (FIFO) from both queues,
// even across calendar resizes triggered by the growth.
TEST(QueueEquivalence, EqualTimeBatchesPreservePushOrder) {
  EventQueue heap(EventQueueImpl::kHeap);
  EventQueue cal(EventQueueImpl::kCalendar);
  const double times[] = {10.0, 10.0, 3.0, 3.0, 3.0, 777.0};
  std::size_t id = 0;
  for (int round = 0; round < 500; ++round) {
    for (const double t : times) {
      heap.push(t, EventKind::kSensorCrossing, id, 0);
      cal.push(t, EventKind::kSensorCrossing, id, 0);
      ++id;
    }
  }
  std::uint64_t prev_seq = 0;
  double prev_time = -1.0;
  while (!heap.empty()) {
    const Event a = heap.pop();
    const Event b = cal.pop();
    ASSERT_TRUE(same_event(a, b))
        << "heap: " << event_str(a) << " cal: " << event_str(b);
    if (a.time == prev_time) {
      ASSERT_GT(a.seq, prev_seq) << "equal-time FIFO violated";
    }
    prev_time = a.time;
    prev_seq = a.seq;
  }
  EXPECT_TRUE(cal.empty());
}

// Monotone-drain pattern (the simulator's actual usage): every push is at or
// after the most recent pop time, across a wide dynamic range of horizons.
TEST(QueueEquivalence, HoldModelMatchesAcrossResizes) {
  Xoshiro256 rng(0xca1e0d1eULL);
  EventQueue heap(EventQueueImpl::kHeap);
  EventQueue cal(EventQueueImpl::kCalendar);
  for (std::size_t i = 0; i < 64; ++i) {
    const double t = rng.uniform(0.0, 100.0);
    heap.push(t, EventKind::kTargetMove, i, 0);
    cal.push(t, EventKind::kTargetMove, i, 0);
  }
  for (int i = 0; i < 20000; ++i) {
    const Event a = heap.pop();
    const Event b = cal.pop();
    ASSERT_TRUE(same_event(a, b)) << "at op " << i;
    // Occasionally grow/shrink the pending population so the calendar
    // resizes both ways mid-run.
    const double grow = rng.uniform(0.0, 1.0);
    const std::size_t pushes = grow < 0.02 ? 40 : (grow < 0.12 ? 0 : 1);
    for (std::size_t p = 0; p < pushes; ++p) {
      const double t = a.time + rng.uniform(0.0, grow < 0.02 ? 1e4 : 50.0);
      heap.push(t, EventKind::kSensorCrossing, p, 0);
      cal.push(t, EventKind::kSensorCrossing, p, 0);
    }
    if (heap.empty()) break;
  }
  while (!heap.empty()) {
    ASSERT_TRUE(same_event(heap.pop(), cal.pop()));
  }
  EXPECT_TRUE(cal.empty());
}

// ---------------------------------------------------------------------------
// Full-simulation pins: queue choice must never change physics.
// ---------------------------------------------------------------------------

struct RunResult {
  std::string report_json;
  std::vector<World::TraceEvent> trace;
  std::vector<double> battery_levels;
  std::uint64_t events = 0;
};

RunResult run_sim(SimConfig cfg, const std::string& queue, WorldEngine engine) {
  cfg.event_queue = queue;
  World w(cfg, engine);
  RunResult out;
  w.set_tracer([&out](const World::TraceEvent& ev) { out.trace.push_back(ev); });
  w.run_until(cfg.sim_duration);
  out.report_json = to_json(w.report());
  for (const Sensor& s : w.network().sensors()) {
    out.battery_levels.push_back(s.battery.level().value());
  }
  out.events = w.events_processed();
  return out;
}

SimConfig pin_config(std::uint64_t seed, bool faults) {
  SimConfig cfg;
  cfg.num_sensors = 50;
  cfg.num_targets = 4;
  cfg.num_rvs = 2;
  cfg.field_side = meters(90.0);
  cfg.sim_duration = hours(6.0);
  cfg.seed = 0x9e000ULL + seed * 7919;
  cfg.target_motion = TargetMotion::kRandomWaypoint;
  cfg.target_period = minutes(30.0);
  cfg.target_speed = MeterPerSecond{1.0};
  cfg.battery.capacity = Joule{150.0};
  cfg.radio.listen_duty_cycle = 0.2;
  if (faults) {
    cfg.fault.enabled = true;
    cfg.fault.request_loss_prob = 0.25;
    cfg.fault.request_delay_prob = 0.2;
    cfg.fault.request_delay_max = minutes(10.0);
    cfg.fault.request_retry_timeout = minutes(5.0);
    cfg.fault.rv_breakdown_at = hours(2.0);
    cfg.fault.rv_repair_duration = hours(1.0);
    cfg.fault.rv_mtbf_hours = 8.0;
    cfg.fault.sensor_fault_rate_per_day = 6.0;
    cfg.fault.sensor_fault_duration = minutes(40.0);
    cfg.fault.battery_noise_per_day = 0.05;
  }
  return cfg;
}

void expect_same_run(const RunResult& a, const RunResult& b,
                     const std::string& what) {
  EXPECT_GT(a.events, 0u) << what;
  EXPECT_EQ(a.report_json, b.report_json) << what;
  EXPECT_EQ(a.events, b.events) << what;
  ASSERT_EQ(a.trace.size(), b.trace.size()) << what;
  for (std::size_t i = 0; i < a.trace.size(); ++i) {
    ASSERT_TRUE(a.trace[i].time == b.trace[i].time &&
                a.trace[i].kind == b.trace[i].kind &&
                a.trace[i].subject == b.trace[i].subject &&
                a.trace[i].epoch == b.trace[i].epoch &&
                a.trace[i].queue_size == b.trace[i].queue_size)
        << what << " diverges at trace index " << i;
  }
  ASSERT_EQ(a.battery_levels, b.battery_levels) << what;
}

// 2 queues x 2 engines x faults on/off: all four (queue, engine) runs of a
// scenario must be bit-identical — the heap/reference pair anchors, every
// other combination is compared against it.
TEST(QueueEquivalence, FullSimsAreByteIdenticalAcrossQueuesAndEngines) {
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    for (const bool faults : {false, true}) {
      const SimConfig cfg = pin_config(seed, faults);
      const std::string tag = "seed=" + std::to_string(seed) +
                              (faults ? " faults=on" : " faults=off");
      const RunResult anchor = run_sim(cfg, "heap", WorldEngine::kReference);
      expect_same_run(anchor, run_sim(cfg, "heap", WorldEngine::kIncremental),
                      tag + " heap/inc");
      expect_same_run(anchor,
                      run_sim(cfg, "calendar", WorldEngine::kReference),
                      tag + " calendar/ref");
      expect_same_run(anchor,
                      run_sim(cfg, "calendar", WorldEngine::kIncremental),
                      tag + " calendar/inc");
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
}

// WRSN_EVENT_QUEUE drives the default-constructed queue and the "auto"
// config value; explicit config names win over the environment.
TEST(QueueEquivalence, EnvironmentAndConfigSelectImplementation) {
  ::unsetenv("WRSN_EVENT_QUEUE");
  EXPECT_EQ(event_queue_default_impl(), EventQueueImpl::kCalendar);
  EXPECT_EQ(EventQueue().impl(), EventQueueImpl::kCalendar);

  ::setenv("WRSN_EVENT_QUEUE", "heap", 1);
  EXPECT_EQ(event_queue_default_impl(), EventQueueImpl::kHeap);
  EXPECT_EQ(event_queue_impl_from_name("auto"), EventQueueImpl::kHeap);
  EXPECT_EQ(event_queue_impl_from_name(""), EventQueueImpl::kHeap);
  // Explicit names ignore the environment.
  EXPECT_EQ(event_queue_impl_from_name("calendar"), EventQueueImpl::kCalendar);

  ::setenv("WRSN_EVENT_QUEUE", "calendar", 1);
  EXPECT_EQ(event_queue_default_impl(), EventQueueImpl::kCalendar);
  EXPECT_EQ(event_queue_impl_from_name("heap"), EventQueueImpl::kHeap);

  ::setenv("WRSN_EVENT_QUEUE", "bogus", 1);
  EXPECT_THROW((void)event_queue_default_impl(), InvalidArgument);
  ::unsetenv("WRSN_EVENT_QUEUE");

  EXPECT_THROW((void)event_queue_impl_from_name("bogus"), InvalidArgument);
}

}  // namespace
}  // namespace wrsn
