#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "sim/svg.hpp"

namespace wrsn {
namespace {

SimConfig tiny_config() {
  SimConfig cfg;
  cfg.num_sensors = 40;
  cfg.num_targets = 3;
  cfg.num_rvs = 2;
  cfg.field_side = meters(60.0);
  cfg.sim_duration = days(1.0);
  return cfg;
}

TEST(Svg, WellFormedDocument) {
  World world(tiny_config());
  const std::string svg = render_svg(world);
  EXPECT_EQ(svg.rfind("<svg", 0), 0u);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  EXPECT_NE(svg.find("xmlns"), std::string::npos);
}

TEST(Svg, ContainsAllEntityKinds) {
  World world(tiny_config());
  const std::string svg = render_svg(world);
  // 40 sensors as circles (alive), 3 target triangles (paths), BS + 2 RVs as
  // rects.
  std::size_t circles = 0, paths = 0, rects = 0;
  for (std::size_t pos = 0; (pos = svg.find("<circle", pos)) != std::string::npos;
       ++pos) {
    ++circles;
  }
  for (std::size_t pos = 0; (pos = svg.find("<path", pos)) != std::string::npos;
       ++pos) {
    ++paths;
  }
  for (std::size_t pos = 0; (pos = svg.find("<rect", pos)) != std::string::npos;
       ++pos) {
    ++rects;
  }
  EXPECT_GE(circles, 40u);
  EXPECT_GE(paths, 3u);
  EXPECT_GE(rects, 2u + 1u + 2u);  // background+border, BS, RVs
}

TEST(Svg, DeadSensorsDrawnAsCrosses) {
  SimConfig cfg = tiny_config();
  World world(cfg);
  // The legend is the only other place strokes appear; count before/after.
  const std::string before = render_svg(world);
  World world2(cfg);
  // Kill a sensor directly.
  const_cast<Network&>(world2.network()).sensor(0).battery.drain(
      Joule{cfg.battery.capacity});
  const std::string after = render_svg(world2);
  // The dead sensor adds a red cross group.
  EXPECT_EQ(before.find("#b02020"), std::string::npos);
  EXPECT_NE(after.find("#b02020"), std::string::npos);
}

TEST(Svg, OptionsChangeOutput) {
  World world(tiny_config());
  SvgOptions plain;
  plain.draw_cluster_links = false;
  plain.draw_legend = false;
  SvgOptions full;
  full.draw_cluster_links = true;
  full.draw_comm_edges = true;
  full.draw_sensing_discs = true;
  const std::string a = render_svg(world, plain);
  const std::string b = render_svg(world, full);
  EXPECT_LT(a.size(), b.size());
  EXPECT_EQ(a.find("<line"), std::string::npos);  // no links, no legend
  EXPECT_NE(b.find("<line"), std::string::npos);
}

TEST(Svg, ScaleValidation) {
  World world(tiny_config());
  SvgOptions bad;
  bad.pixels_per_meter = 0.0;
  EXPECT_THROW((void)render_svg(world, bad), InvalidArgument);
}

TEST(Svg, SaveToFile) {
  World world(tiny_config());
  const std::string path = ::testing::TempDir() + "/wrsn_test.svg";
  save_svg(path, world);
  std::ifstream is(path);
  ASSERT_TRUE(is.good());
  std::string first;
  std::getline(is, first);
  EXPECT_EQ(first.rfind("<svg", 0), 0u);
  std::remove(path.c_str());
  EXPECT_THROW(save_svg("/no/such/dir/x.svg", world), InvalidArgument);
}

TEST(Svg, RendersMidSimulation) {
  SimConfig cfg = tiny_config();
  cfg.radio.listen_duty_cycle = 0.5;
  World world(cfg);
  world.run_until(hours(12.0));
  const std::string svg = render_svg(world);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
}

}  // namespace
}  // namespace wrsn
