#include <gtest/gtest.h>

#include "core/error.hpp"
#include "core/rng.hpp"
#include "sched/exact.hpp"
#include "sched/profit.hpp"

namespace wrsn {
namespace {

RechargeItem item_at(Vec2 pos, double demand, SensorId sensor = 0) {
  RechargeItem it;
  it.pos = pos;
  it.demand = Joule{demand};
  it.sensors = {sensor};
  return it;
}

PlannerParams params() { return {JoulePerMeter{5.6}, Vec2{100, 100}}; }

TEST(Exact, EmptyInstance) {
  RvPlanState rv{{100, 100}, Joule{1000.0}};
  const auto sol = exact_single_rv(rv, {}, params());
  EXPECT_TRUE(sol.sequence.empty());
  EXPECT_DOUBLE_EQ(sol.profit.value(), 0.0);
}

TEST(Exact, SingleProfitableItem) {
  const std::vector<RechargeItem> items = {item_at({110, 100}, 500.0)};
  RvPlanState rv{{100, 100}, Joule{50000.0}};
  const auto sol = exact_single_rv(rv, items, params());
  EXPECT_EQ(sol.sequence, (std::vector<std::size_t>{0}));
  EXPECT_DOUBLE_EQ(sol.profit.value(), 500.0 - 56.0);
}

TEST(Exact, UnprofitableItemSkipped) {
  // Demand 10 J at 100 m: profit 10 - 560 < 0 -> empty tour is better.
  const std::vector<RechargeItem> items = {item_at({200, 100}, 10.0)};
  RvPlanState rv{{100, 100}, Joule{50000.0}};
  const auto sol = exact_single_rv(rv, items, params());
  EXPECT_TRUE(sol.sequence.empty());
  EXPECT_DOUBLE_EQ(sol.profit.value(), 0.0);
}

TEST(Exact, BudgetExcludesExpensiveItem) {
  const std::vector<RechargeItem> items = {
      item_at({110, 100}, 400.0, 0),
      item_at({120, 100}, 5000.0, 1),
  };
  // Budget fits item 0 (56+56*? travel + 400) but not item 1's 5000 demand.
  RvPlanState rv{{100, 100}, Joule{700.0}};
  const auto sol = exact_single_rv(rv, items, params());
  EXPECT_EQ(sol.sequence, (std::vector<std::size_t>{0}));
}

TEST(Exact, OrdersTwoItemsOptimally) {
  // Two items on a line: visiting in order is shorter than zig-zag.
  const std::vector<RechargeItem> items = {
      item_at({120, 100}, 1000.0, 0),
      item_at({140, 100}, 1000.0, 1),
  };
  RvPlanState rv{{100, 100}, Joule{50000.0}};
  const auto sol = exact_single_rv(rv, items, params());
  EXPECT_EQ(sol.sequence, (std::vector<std::size_t>{0, 1}));
  EXPECT_DOUBLE_EQ(sol.profit.value(), 2000.0 - 5.6 * 40.0);
}

TEST(Exact, ReturnBudgetFlagMatters) {
  // 100 m out, demand 800 J: one-way cost 560 J (profit +240), return adds
  // another 560 J to the budget under the strict flag.
  const std::vector<RechargeItem> items = {item_at({200, 100}, 800.0)};
  RvPlanState rv{{100, 100}, Joule{1400.0}};  // covers leg + demand only
  const auto strict = exact_single_rv(rv, items, params(), true);
  EXPECT_TRUE(strict.sequence.empty());
  const auto relaxed = exact_single_rv(rv, items, params(), false);
  EXPECT_EQ(relaxed.sequence, (std::vector<std::size_t>{0}));
}

TEST(Exact, RefusesHugeInstances) {
  std::vector<RechargeItem> items(15, item_at({0, 0}, 1.0));
  RvPlanState rv{{0, 0}, Joule{1.0}};
  EXPECT_THROW(exact_single_rv(rv, items, params()), InvalidArgument);
}

// Properties vs the heuristics on random instances:
//  1. exact >= insertion >= dest-only greedy (profit dominance);
//  2. exact respects the budget;
//  3. insertion achieves at least 60% of the exact profit at these scales
//     (empirical regret bound; it documents how good Algorithm 3 is).
class ExactVsHeuristics : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ExactVsHeuristics, ProfitDominanceAndRegret) {
  Xoshiro256 rng(GetParam());
  const std::size_t n = 3 + rng.uniform_int(6);  // 3..8 items
  std::vector<RechargeItem> items;
  for (std::size_t i = 0; i < n; ++i) {
    items.push_back(item_at({rng.uniform(0.0, 200.0), rng.uniform(0.0, 200.0)},
                            rng.uniform(200.0, 3500.0), i));
  }
  RvPlanState rv{{100, 100}, Joule{rng.uniform(4000.0, 20000.0)}};

  const auto exact = exact_single_rv(rv, items, params());

  std::vector<bool> taken(n, false);
  const auto heur = insertion_sequence(rv, items, taken, params());
  const Joule heur_profit =
      heur.empty() ? Joule{0.0}
                   : sequence_profit(rv.pos, items, heur, params().em);

  // 1. dominance
  EXPECT_GE(exact.profit.value(), heur_profit.value() - 1e-6);

  // 2. exact feasibility: travel(+return) + demands <= budget
  if (!exact.sequence.empty()) {
    const double travel =
        sequence_length(rv.pos, items, exact.sequence, params().base);
    double demand = 0.0;
    for (std::size_t i : exact.sequence) demand += items[i].demand.value();
    EXPECT_LE(5.6 * travel + demand, rv.available.value() + 1e-6);
  }

  // 3. regret bound
  if (exact.profit.value() > 1e-9) {
    EXPECT_GE(heur_profit.value(), 0.60 * exact.profit.value())
        << "insertion heuristic regret too large";
  }
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, ExactVsHeuristics,
                         ::testing::Range<std::uint64_t>(0, 30));

TEST(Exact, ExploresReasonableNodeCount) {
  Xoshiro256 rng(5);
  std::vector<RechargeItem> items;
  for (std::size_t i = 0; i < 8; ++i) {
    items.push_back(item_at({rng.uniform(0.0, 200.0), rng.uniform(0.0, 200.0)},
                            rng.uniform(500.0, 3000.0), i));
  }
  RvPlanState rv{{100, 100}, Joule{30000.0}};
  const auto sol = exact_single_rv(rv, items, params());
  EXPECT_GT(sol.nodes_explored, 0u);
  // Bound-pruned search must stay far under the 8! * sum permutations blowup.
  EXPECT_LT(sol.nodes_explored, 2000000u);
}

}  // namespace
}  // namespace wrsn
