// The obs/ layer: registry semantics under concurrency, scoped timers,
// merge exactness, export formats, and the JSONL trace schema contract.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "core/json.hpp"
#include "core/thread_pool.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"

namespace wrsn {
namespace {

using obs::Histogram;
using obs::TelemetryRegistry;

TEST(Telemetry, CounterAndGaugeBasics) {
  TelemetryRegistry reg;
  EXPECT_TRUE(reg.empty());
  reg.counter("a").add();
  reg.counter("a").add(4);
  EXPECT_EQ(reg.counter("a").value(), 5u);
  reg.gauge("g").set(2.0);
  reg.gauge("g").record_max(7.0);
  reg.gauge("g").record_max(3.0);  // lower: ignored
  EXPECT_DOUBLE_EQ(reg.gauge("g").value(), 7.0);
  EXPECT_FALSE(reg.empty());
}

TEST(Telemetry, HistogramBuckets) {
  TelemetryRegistry reg;
  Histogram& h = reg.histogram("h", {1.0, 2.0, 5.0});
  for (double v : {0.5, 1.0, 1.5, 4.0, 100.0}) h.observe(v);
  const auto counts = h.bucket_counts();
  ASSERT_EQ(counts.size(), 4u);  // 3 bounds + overflow
  EXPECT_EQ(counts[0], 2u);      // 0.5, 1.0 (le semantics)
  EXPECT_EQ(counts[1], 1u);      // 1.5
  EXPECT_EQ(counts[2], 1u);      // 4.0
  EXPECT_EQ(counts[3], 1u);      // 100.0 overflow
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 107.0);
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 100.0);
}

TEST(Telemetry, EmptyHistogramHasZeroMinMax) {
  TelemetryRegistry reg;
  Histogram& h = reg.timer("t");
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
}

// The registry's core contract: hammered from many pool workers, totals are
// exact — no lost updates, no torn bucket counts.
TEST(Telemetry, ConcurrentHammerIsExact) {
  TelemetryRegistry reg;
  ThreadPool pool(8);
  constexpr std::size_t kTasks = 64;
  constexpr std::size_t kPerTask = 10000;
  pool.parallel_for(kTasks, [&](std::size_t i) {
    obs::Counter& c = reg.counter("hits");
    Histogram& h = reg.histogram("vals", {10.0, 100.0, 1000.0});
    obs::Gauge& g = reg.gauge("hwm");
    for (std::size_t k = 0; k < kPerTask; ++k) {
      c.add();
      h.observe(static_cast<double>(k % 2000));
      g.record_max(static_cast<double>(i * kPerTask + k));
    }
  });
  EXPECT_EQ(reg.counter("hits").value(), kTasks * kPerTask);
  Histogram& h = reg.histogram("vals", {});
  EXPECT_EQ(h.count(), kTasks * kPerTask);
  const auto counts = h.bucket_counts();
  // k%2000: 11 values <=10, 90 in (10,100], 900 in (100,1000], 999 overflow.
  EXPECT_EQ(counts[0], kTasks * kPerTask / 2000 * 11);
  EXPECT_EQ(counts[1], kTasks * kPerTask / 2000 * 90);
  EXPECT_EQ(counts[2], kTasks * kPerTask / 2000 * 900);
  EXPECT_EQ(counts[3], kTasks * kPerTask / 2000 * 999);
  EXPECT_DOUBLE_EQ(reg.gauge("hwm").value(),
                   static_cast<double>(kTasks * kPerTask - 1));
}

TEST(Telemetry, ScopedTimerRecordsOnlyWhenInstalled) {
  TelemetryRegistry reg;
  {
    // No registry installed on this thread: the scope must be inert.
    WRSN_OBS_SCOPE("scope/untracked");
  }
  EXPECT_TRUE(reg.empty());
  {
    const obs::TelemetryScope install(&reg);
    WRSN_OBS_SCOPE("scope/tracked");
  }
  EXPECT_EQ(reg.timer("scope/tracked").count(), 1u);
  // Installation is restored after the scope ends.
  EXPECT_EQ(obs::current_registry(), nullptr);
}

TEST(Telemetry, TimerScopesNest) {
  TelemetryRegistry reg;
  {
    const obs::TelemetryScope install(&reg);
    WRSN_OBS_SCOPE("nest/outer");
    for (int i = 0; i < 3; ++i) {
      WRSN_OBS_SCOPE("nest/inner");
    }
  }
  EXPECT_EQ(reg.timer("nest/outer").count(), 1u);
  EXPECT_EQ(reg.timer("nest/inner").count(), 3u);
  // An outer scope's elapsed time covers its children.
  EXPECT_GE(reg.timer("nest/outer").sum(), reg.timer("nest/inner").sum());
}

TEST(Telemetry, NestedInstallationRestoresPrevious) {
  TelemetryRegistry outer, inner;
  const obs::TelemetryScope a(&outer);
  {
    const obs::TelemetryScope b(&inner);
    EXPECT_EQ(obs::current_registry(), &inner);
  }
  EXPECT_EQ(obs::current_registry(), &outer);
}

TEST(Telemetry, MergeIsExact) {
  TelemetryRegistry a, b;
  a.counter("c").add(3);
  b.counter("c").add(4);
  b.counter("only-b").add(1);
  a.gauge("g").record_max(5.0);
  b.gauge("g").record_max(9.0);
  a.histogram("h", {1.0, 2.0}).observe(0.5);
  b.histogram("h", {1.0, 2.0}).observe(1.5);
  b.histogram("h", {1.0, 2.0}).observe(10.0);

  a.merge_from(b);
  EXPECT_EQ(a.counter("c").value(), 7u);
  EXPECT_EQ(a.counter("only-b").value(), 1u);
  EXPECT_DOUBLE_EQ(a.gauge("g").value(), 9.0);
  Histogram& h = a.histogram("h", {});
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.sum(), 12.0);
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 10.0);
  const auto counts = h.bucket_counts();
  EXPECT_EQ(counts[0], 1u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 1u);
}

TEST(Telemetry, JsonExportIsValidAndVersioned) {
  TelemetryRegistry reg;
  reg.counter("events/popped/rv-arrival").add(2);
  reg.gauge("events/queue-high-water").record_max(17.0);
  reg.timer("planner/insertion").observe(0.001);
  const std::string doc = reg.to_json();
  std::string error;
  EXPECT_TRUE(json_validate(doc, &error)) << error;
  EXPECT_NE(doc.find("\"schema\":\"wrsn.telemetry\""), std::string::npos);
  EXPECT_NE(doc.find("\"version\":1"), std::string::npos);
  EXPECT_NE(doc.find("events/popped/rv-arrival"), std::string::npos);
  EXPECT_NE(doc.find("planner/insertion"), std::string::npos);
  // Export is a pure read: repeated calls are byte-identical.
  EXPECT_EQ(doc, reg.to_json());
}

TEST(Telemetry, PrometheusExportShape) {
  TelemetryRegistry reg;
  reg.counter("events/stale-discarded").add(5);
  reg.gauge("events/queue-high-water").set(3.0);
  reg.histogram("lat", {1.0, 2.0}).observe(1.5);
  const std::string text = reg.to_prometheus();
  EXPECT_NE(text.find("# TYPE wrsn_events_stale_discarded_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("wrsn_events_stale_discarded_total 5"), std::string::npos);
  EXPECT_NE(text.find("# TYPE wrsn_events_queue_high_water gauge"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE wrsn_lat_seconds histogram"), std::string::npos);
  EXPECT_NE(text.find("wrsn_lat_seconds_bucket{le=\"+Inf\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("wrsn_lat_seconds_count 1"), std::string::npos);
}

// --- JSONL trace sink ------------------------------------------------------

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> out;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) out.push_back(line);
  return out;
}

// The schema contract: field list and version are frozen. If this test
// breaks, bump obs::kTraceSchemaVersion and update consumers deliberately.
TEST(TraceSink, JsonlSchemaIsStable) {
  std::ostringstream os;
  obs::JsonlTraceSink sink(os);
  sink.on_event({12.5, "rv-arrival", 3, 7, 42});
  sink.finish();
  const auto lines = lines_of(os.str());
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0],
            R"({"record":"meta","schema":"wrsn.trace","version":1,)"
            R"("fields":["t_s","kind","subject","epoch","queue"]})");
  EXPECT_EQ(lines[1],
            R"({"record":"event","t_s":12.5,"kind":"rv-arrival",)"
            R"("subject":3,"epoch":7,"queue":42})");
  for (const std::string& line : lines) {
    std::string error;
    EXPECT_TRUE(json_validate(line, &error)) << error;
  }
  EXPECT_EQ(sink.events_written(), 1u);
  EXPECT_EQ(obs::kTraceSchemaVersion, 1);
}

TEST(TraceSink, CsvCarriesSameFields) {
  std::ostringstream os;
  obs::CsvTraceSink sink(os);
  sink.on_event({3600.0, "sensor-crossing", 11, 2, 9});
  sink.finish();
  const auto lines = lines_of(os.str());
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], "t_seconds,t_hours,event,subject,epoch,queue_size");
  EXPECT_EQ(lines[1], "3600,1,sensor-crossing,11,2,9");
}

}  // namespace
}  // namespace wrsn
