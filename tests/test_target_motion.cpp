// Target motion models: teleport (the paper's) vs random waypoint (library
// extension for physically moving targets).
#include <gtest/gtest.h>

#include "sim/world.hpp"

namespace wrsn {
namespace {

SimConfig motion_config(TargetMotion motion) {
  SimConfig cfg;
  cfg.num_sensors = 100;
  cfg.num_targets = 3;
  cfg.num_rvs = 1;
  cfg.field_side = meters(100.0);
  cfg.sim_duration = days(2.0);
  cfg.target_motion = motion;
  cfg.target_speed = MeterPerSecond{0.5};
  cfg.seed = 31337;
  return cfg;
}

std::vector<Vec2> target_positions(const World& w) {
  std::vector<Vec2> out;
  for (const Target& t : w.network().targets()) out.push_back(t.pos);
  return out;
}

TEST(TargetMotion, TeleportJumpsArbitraryDistances) {
  World w(motion_config(TargetMotion::kTeleport));
  const auto before = target_positions(w);
  w.run_until(hours(12.0));  // several target periods
  const auto after = target_positions(w);
  double max_jump = 0.0;
  for (std::size_t t = 0; t < before.size(); ++t) {
    max_jump = std::max(max_jump, distance(before[t], after[t]));
  }
  EXPECT_GT(max_jump, 10.0);  // at least one target far from its origin
}

TEST(TargetMotion, WaypointSpeedBound) {
  // Under random-waypoint motion a target can never outrun its speed.
  SimConfig cfg = motion_config(TargetMotion::kRandomWaypoint);
  World w(cfg);
  std::vector<Vec2> prev = target_positions(w);
  double prev_t = 0.0;
  const double speed = cfg.target_speed.value();
  for (double t_h = 1.0; t_h <= 24.0; t_h += 1.0) {
    w.run_until(hours(t_h));
    const auto cur = target_positions(w);
    const double dt = w.now().value() - prev_t;
    for (std::size_t t = 0; t < cur.size(); ++t) {
      EXPECT_LE(distance(prev[t], cur[t]), speed * dt + 1e-6)
          << "target " << t << " at hour " << t_h;
    }
    prev = cur;
    prev_t = w.now().value();
  }
}

TEST(TargetMotion, WaypointTargetsActuallyMove) {
  World w(motion_config(TargetMotion::kRandomWaypoint));
  const auto before = target_positions(w);
  w.run_until(days(1.0));
  const auto after = target_positions(w);
  double total = 0.0;
  for (std::size_t t = 0; t < before.size(); ++t) {
    total += distance(before[t], after[t]);
  }
  EXPECT_GT(total, 5.0);
}

TEST(TargetMotion, WaypointStaysInField) {
  SimConfig cfg = motion_config(TargetMotion::kRandomWaypoint);
  cfg.sim_duration = days(4.0);
  World w(cfg);
  for (double t_h = 2.0; t_h <= 96.0; t_h += 2.0) {
    w.run_until(hours(t_h));
    for (const Target& t : w.network().targets()) {
      EXPECT_GE(t.pos.x, 0.0);
      EXPECT_LE(t.pos.x, cfg.field_side.value());
      EXPECT_GE(t.pos.y, 0.0);
      EXPECT_LE(t.pos.y, cfg.field_side.value());
    }
  }
}

TEST(TargetMotion, WaypointCoverageRemainsReasonable) {
  // The framework must keep tracking moving targets: clusters are rebuilt
  // per motion segment, so coverage stays high.
  World w(motion_config(TargetMotion::kRandomWaypoint));
  const auto r = w.run();
  EXPECT_GT(r.coverage_ratio, 0.8);
}

TEST(TargetMotion, BothModesDeterministic) {
  for (auto motion : {TargetMotion::kTeleport, TargetMotion::kRandomWaypoint}) {
    World a(motion_config(motion)), b(motion_config(motion));
    a.run();
    b.run();
    const auto pa = target_positions(a);
    const auto pb = target_positions(b);
    for (std::size_t t = 0; t < pa.size(); ++t) {
      EXPECT_EQ(pa[t], pb[t]) << to_string(motion);
    }
  }
}

TEST(TargetMotion, ConfigValidation) {
  SimConfig cfg = motion_config(TargetMotion::kRandomWaypoint);
  cfg.target_speed = MeterPerSecond{0.0};
  EXPECT_THROW(cfg.validate(), InvalidArgument);
}

}  // namespace
}  // namespace wrsn
