// ReplicaSupervisor: retry with exponential backoff, watchdog timeouts,
// quarantine-instead-of-abort, and the "supervisor/*" telemetry counters.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "obs/telemetry.hpp"
#include "sim/snapshot.hpp"
#include "sim/supervisor.hpp"
#include "sim/world.hpp"

namespace wrsn {
namespace {

// Options with a recorded (not slept) backoff schedule.
SupervisorOptions fake_sleep_options(std::vector<double>* sleeps,
                                     std::size_t max_retries = 3,
                                     double backoff_ms = 50.0) {
  SupervisorOptions opt;
  opt.max_retries = max_retries;
  opt.backoff_ms = backoff_ms;
  opt.sleep_ms = [sleeps](double ms) { sleeps->push_back(ms); };
  return opt;
}

AttemptOutcome ok_outcome() {
  AttemptOutcome out;
  out.status = AttemptOutcome::Status::kOk;
  return out;
}

TEST(Supervisor, FirstTrySucceedsWithoutSleeping) {
  std::vector<double> sleeps;
  obs::TelemetryRegistry telemetry;
  ReplicaSupervisor sup(fake_sleep_options(&sleeps), &telemetry);
  const ReplicaResult res = sup.supervise([] { return ok_outcome(); });
  EXPECT_TRUE(res.ok);
  EXPECT_EQ(res.attempts, 1u);
  EXPECT_FALSE(res.timed_out);
  EXPECT_TRUE(res.error.empty());
  EXPECT_TRUE(sleeps.empty());
  EXPECT_EQ(telemetry.counter("supervisor/retries").value(), 0u);
}

TEST(Supervisor, RetriesWithDoublingBackoffThenSucceeds) {
  std::vector<double> sleeps;
  obs::TelemetryRegistry telemetry;
  ReplicaSupervisor sup(fake_sleep_options(&sleeps, 5, 50.0), &telemetry);
  int calls = 0;
  const ReplicaResult res = sup.supervise([&calls] {
    if (++calls <= 3) throw std::runtime_error("flaky");
    return ok_outcome();
  });
  EXPECT_TRUE(res.ok);
  EXPECT_EQ(res.attempts, 4u);
  EXPECT_TRUE(res.error.empty());  // success clears the stale failure cause
  EXPECT_EQ(sleeps, (std::vector<double>{50.0, 100.0, 200.0}));
  EXPECT_EQ(telemetry.counter("supervisor/retries").value(), 3u);
  EXPECT_EQ(telemetry.counter("supervisor/errors").value(), 3u);
  EXPECT_EQ(telemetry.counter("supervisor/quarantines").value(), 0u);
}

TEST(Supervisor, AlwaysFailingReplicaIsQuarantinedNotThrown) {
  std::vector<double> sleeps;
  obs::TelemetryRegistry telemetry;
  ReplicaSupervisor sup(fake_sleep_options(&sleeps, 2, 10.0), &telemetry);
  const ReplicaResult res = sup.supervise(
      []() -> AttemptOutcome { throw std::runtime_error("always broken"); });
  EXPECT_FALSE(res.ok);
  EXPECT_EQ(res.attempts, 3u);  // 1 try + 2 retries
  EXPECT_EQ(res.error, "always broken");
  EXPECT_EQ(sleeps, (std::vector<double>{10.0, 20.0}));
  EXPECT_EQ(telemetry.counter("supervisor/quarantines").value(), 1u);
  EXPECT_EQ(telemetry.counter("supervisor/errors").value(), 3u);
  EXPECT_EQ(telemetry.counter("supervisor/retries").value(), 2u);
}

TEST(Supervisor, NonStdExceptionIsAbsorbed) {
  std::vector<double> sleeps;
  ReplicaSupervisor sup(fake_sleep_options(&sleeps, 0));
  const ReplicaResult res = sup.supervise([]() -> AttemptOutcome { throw 42; });
  EXPECT_FALSE(res.ok);
  EXPECT_EQ(res.error, "unknown exception");
}

TEST(Supervisor, TimeoutOutcomeMarksTimedOut) {
  std::vector<double> sleeps;
  obs::TelemetryRegistry telemetry;
  ReplicaSupervisor sup(fake_sleep_options(&sleeps, 1, 5.0), &telemetry);
  const ReplicaResult res = sup.supervise([] {
    AttemptOutcome out;
    out.status = AttemptOutcome::Status::kTimeout;
    return out;
  });
  EXPECT_FALSE(res.ok);
  EXPECT_TRUE(res.timed_out);
  EXPECT_EQ(res.error, "watchdog timeout");
  EXPECT_EQ(res.attempts, 2u);
  EXPECT_EQ(telemetry.counter("supervisor/timeouts").value(), 2u);
  EXPECT_EQ(telemetry.counter("supervisor/quarantines").value(), 1u);
}

TEST(Supervisor, ZeroBackoffNeverSleeps) {
  std::vector<double> sleeps;
  ReplicaSupervisor sup(fake_sleep_options(&sleeps, 2, 0.0));
  const ReplicaResult res = sup.supervise(
      []() -> AttemptOutcome { throw std::runtime_error("x"); });
  EXPECT_FALSE(res.ok);
  EXPECT_TRUE(sleeps.empty());
}

SimConfig small_config() {
  SimConfig cfg;
  cfg.num_sensors = 30;
  cfg.num_targets = 3;
  cfg.num_rvs = 1;
  cfg.field_side = meters(80.0);
  cfg.sim_duration = hours(2.0);
  cfg.seed = 11;
  cfg.battery.capacity = Joule{150.0};
  return cfg;
}

TEST(Supervisor, RealReplicaRunsToCompletionWithoutWatchdog) {
  std::vector<double> sleeps;
  SupervisorOptions opt = fake_sleep_options(&sleeps);
  opt.watchdog_s = 0.0;  // disabled
  ReplicaSupervisor sup(opt);
  const ReplicaResult res = sup.run(small_config());
  EXPECT_TRUE(res.ok);
  EXPECT_EQ(res.attempts, 1u);
  EXPECT_GT(res.report.duration.value(), 0.0);
}

TEST(Supervisor, TinyWatchdogTimesOutRealReplica) {
  // A microscopic wall-clock budget: the deadline has passed by the first
  // throttled check (event 1024), so every attempt times out and the
  // replica is quarantined without aborting the caller.
  std::vector<double> sleeps;
  obs::TelemetryRegistry telemetry;
  SupervisorOptions opt = fake_sleep_options(&sleeps, 1, 5.0);
  opt.watchdog_s = 1e-9;
  ReplicaSupervisor sup(opt, &telemetry);
  SimConfig cfg = small_config();
  cfg.sim_duration = hours(240.0);  // thousands of events past the first check
  const ReplicaResult res = sup.run(cfg);
  EXPECT_FALSE(res.ok);
  EXPECT_TRUE(res.timed_out);
  EXPECT_EQ(res.error, "watchdog timeout");
  EXPECT_EQ(res.attempts, 2u);
  EXPECT_EQ(sleeps, (std::vector<double>{5.0}));
  EXPECT_EQ(telemetry.counter("supervisor/timeouts").value(), 2u);
  EXPECT_EQ(telemetry.counter("supervisor/quarantines").value(), 1u);
}

TEST(Supervisor, WatchdogStopLeavesWorldResumable) {
  // The cooperative watchdog stops via the checkpoint hook, so a timed-out
  // world is quiescent: it can be checkpointed or resumed, not just thrown
  // away. (The supervisor itself retries from scratch for determinism.)
  World world(small_config());
  world.set_checkpoint_hook([](const World&) { return true; });
  world.run_until(hours(2.0));
  EXPECT_FALSE(world.finished());
  EXPECT_EQ(world.events_processed(), 1u);
  EXPECT_NO_THROW((void)world.checkpoint());
}

}  // namespace
}  // namespace wrsn
