#include <gtest/gtest.h>

#include "core/error.hpp"
#include "net/graph.hpp"
#include "net/routing.hpp"
#include "net/traffic.hpp"

namespace wrsn {
namespace {

class TrafficTest : public ::testing::Test {
 protected:
  // Line: s0 -- s1 -- s2 -- BS, 10 m spacing, range 12 m.
  void SetUp() override {
    graph_ = CommGraph({{0, 0}, {10, 0}, {20, 0}}, Vec2{30, 0}, 12.0);
    tree_.build(graph_, std::vector<bool>(3, true));
    traffic_.reset(3);
  }
  CommGraph graph_;
  RoutingTree tree_;
  TrafficModel traffic_;
};

TEST_F(TrafficTest, SingleSourceRelayRates) {
  traffic_.add_source(tree_, 0, 0.25);
  // Source transmits, relays receive + transmit.
  EXPECT_DOUBLE_EQ(traffic_.tx_rate(0), 0.25);
  EXPECT_DOUBLE_EQ(traffic_.rx_rate(0), 0.0);
  EXPECT_DOUBLE_EQ(traffic_.tx_rate(1), 0.25);
  EXPECT_DOUBLE_EQ(traffic_.rx_rate(1), 0.25);
  EXPECT_DOUBLE_EQ(traffic_.tx_rate(2), 0.25);
  EXPECT_DOUBLE_EQ(traffic_.rx_rate(2), 0.25);
  EXPECT_DOUBLE_EQ(traffic_.delivery_rate(), 0.25);
}

TEST_F(TrafficTest, MultipleSourcesAccumulate) {
  traffic_.add_source(tree_, 0, 0.25);
  traffic_.add_source(tree_, 1, 0.5);
  EXPECT_DOUBLE_EQ(traffic_.tx_rate(2), 0.75);
  EXPECT_DOUBLE_EQ(traffic_.rx_rate(2), 0.75);
  EXPECT_DOUBLE_EQ(traffic_.tx_rate(1), 0.75);
  EXPECT_DOUBLE_EQ(traffic_.rx_rate(1), 0.25);
  EXPECT_DOUBLE_EQ(traffic_.delivery_rate(), 0.75);
}

TEST_F(TrafficTest, RemoveSourceRestoresRates) {
  traffic_.add_source(tree_, 0, 0.25);
  traffic_.add_source(tree_, 1, 0.5);
  traffic_.remove_source(0);
  EXPECT_DOUBLE_EQ(traffic_.tx_rate(0), 0.0);
  EXPECT_DOUBLE_EQ(traffic_.tx_rate(2), 0.5);
  EXPECT_DOUBLE_EQ(traffic_.delivery_rate(), 0.5);
  traffic_.remove_source(1);
  for (SensorId s = 0; s < 3; ++s) {
    EXPECT_DOUBLE_EQ(traffic_.tx_rate(s), 0.0);
    EXPECT_DOUBLE_EQ(traffic_.rx_rate(s), 0.0);
  }
  EXPECT_DOUBLE_EQ(traffic_.delivery_rate(), 0.0);
}

TEST_F(TrafficTest, ClearSources) {
  traffic_.add_source(tree_, 0, 0.25);
  traffic_.add_source(tree_, 2, 0.25);
  traffic_.clear_sources();
  EXPECT_EQ(traffic_.num_sources(), 0u);
  EXPECT_DOUBLE_EQ(traffic_.tx_rate(2), 0.0);
  EXPECT_DOUBLE_EQ(traffic_.delivery_rate(), 0.0);
}

TEST_F(TrafficTest, DuplicateSourceRejected) {
  traffic_.add_source(tree_, 0, 0.25);
  EXPECT_THROW(traffic_.add_source(tree_, 0, 0.25), InvalidArgument);
  EXPECT_THROW(traffic_.remove_source(1), InvalidArgument);
}

TEST_F(TrafficTest, UnreachableSourceStillTransmits) {
  // Node 0 alive but relay 1 dead: 0 cannot reach the BS.
  RoutingTree broken;
  broken.build(graph_, std::vector<bool>{true, false, true});
  traffic_.add_source(broken, 0, 0.25);
  EXPECT_DOUBLE_EQ(traffic_.tx_rate(0), 0.25);  // wasted transmissions
  EXPECT_DOUBLE_EQ(traffic_.tx_rate(2), 0.0);
  EXPECT_DOUBLE_EQ(traffic_.delivery_rate(), 0.0);
}

TEST_F(TrafficTest, RerouteFollowsNewTree) {
  traffic_.add_source(tree_, 0, 0.25);
  // Node 1 dies: the route breaks, reroute keeps the source registered but
  // with no deliverable path.
  RoutingTree broken;
  broken.build(graph_, std::vector<bool>{true, false, true});
  traffic_.reroute(broken);
  EXPECT_EQ(traffic_.num_sources(), 1u);
  EXPECT_DOUBLE_EQ(traffic_.delivery_rate(), 0.0);
  EXPECT_DOUBLE_EQ(traffic_.tx_rate(2), 0.0);
  // Node 1 revives: delivery resumes.
  traffic_.reroute(tree_);
  EXPECT_DOUBLE_EQ(traffic_.delivery_rate(), 0.25);
  EXPECT_DOUBLE_EQ(traffic_.tx_rate(1), 0.25);
}

TEST_F(TrafficTest, RadioPowerComposition) {
  RadioModel radio;
  radio.listen_duty_cycle = 0.0;  // isolate per-packet terms
  traffic_.add_source(tree_, 0, 1.0);
  const double etx = radio.tx_energy_per_packet().value();
  const double erx = radio.rx_energy_per_packet().value();
  EXPECT_NEAR(traffic_.radio_power(0, radio).value(),
              radio.idle_power.value() + etx, 1e-12);
  EXPECT_NEAR(traffic_.radio_power(1, radio).value(),
              radio.idle_power.value() + etx + erx, 1e-12);
}

TEST_F(TrafficTest, ListenDutyAddsFloor) {
  RadioModel radio;
  radio.listen_duty_cycle = 0.10;
  EXPECT_NEAR(traffic_.radio_power(0, radio).value(),
              radio.idle_power.value() + 0.10 * radio.rx_power.value(), 1e-12);
}

TEST_F(TrafficTest, ZeroRateSourceIsHarmless) {
  traffic_.add_source(tree_, 0, 0.0);
  EXPECT_DOUBLE_EQ(traffic_.tx_rate(0), 0.0);
  EXPECT_DOUBLE_EQ(traffic_.delivery_rate(), 0.0);
}

TEST_F(TrafficTest, SourceIdValidation) {
  EXPECT_THROW(traffic_.add_source(tree_, 99, 0.25), InvalidArgument);
  EXPECT_THROW(traffic_.add_source(tree_, 0, -1.0), InvalidArgument);
}

}  // namespace
}  // namespace wrsn
