#include <gtest/gtest.h>

#include <cmath>

#include "core/error.hpp"
#include "net/graph.hpp"
#include "net/routing.hpp"
#include "net/traffic.hpp"

namespace wrsn {
namespace {

class TrafficTest : public ::testing::Test {
 protected:
  // Line: s0 -- s1 -- s2 -- BS, 10 m spacing, range 12 m.
  void SetUp() override {
    graph_ = CommGraph({{0, 0}, {10, 0}, {20, 0}}, Vec2{30, 0}, 12.0);
    positions_ = {{0, 0}, {10, 0}, {20, 0}, {30, 0}};
    tree_ = build(std::vector<bool>(3, true));
    traffic_.reset(3);
  }

  [[nodiscard]] RouteTable build(const std::vector<bool>& usable) const {
    RouteTable table;
    const RoutingBuildInput in{&graph_, &positions_, &usable};
    RoutingRegistry::instance().create("shortest_path")->build(in, table);
    return table;
  }

  CommGraph graph_;
  std::vector<Vec2> positions_;
  RouteTable tree_;
  TrafficModel traffic_;
};

TEST_F(TrafficTest, SingleSourceRelayRates) {
  traffic_.add_source(tree_, 0, 0.25);
  // Source transmits, relays receive + transmit.
  EXPECT_DOUBLE_EQ(traffic_.tx_rate(0), 0.25);
  EXPECT_DOUBLE_EQ(traffic_.rx_rate(0), 0.0);
  EXPECT_DOUBLE_EQ(traffic_.tx_rate(1), 0.25);
  EXPECT_DOUBLE_EQ(traffic_.rx_rate(1), 0.25);
  EXPECT_DOUBLE_EQ(traffic_.tx_rate(2), 0.25);
  EXPECT_DOUBLE_EQ(traffic_.rx_rate(2), 0.25);
  EXPECT_DOUBLE_EQ(traffic_.delivery_rate(), 0.25);
  EXPECT_DOUBLE_EQ(traffic_.offered_rate(), 0.25);
}

TEST_F(TrafficTest, MultipleSourcesAccumulate) {
  traffic_.add_source(tree_, 0, 0.25);
  traffic_.add_source(tree_, 1, 0.5);
  EXPECT_DOUBLE_EQ(traffic_.tx_rate(2), 0.75);
  EXPECT_DOUBLE_EQ(traffic_.rx_rate(2), 0.75);
  EXPECT_DOUBLE_EQ(traffic_.tx_rate(1), 0.75);
  EXPECT_DOUBLE_EQ(traffic_.rx_rate(1), 0.25);
  EXPECT_DOUBLE_EQ(traffic_.delivery_rate(), 0.75);
  EXPECT_DOUBLE_EQ(traffic_.offered_rate(), 0.75);
}

TEST_F(TrafficTest, RemoveSourceRestoresRates) {
  traffic_.add_source(tree_, 0, 0.25);
  traffic_.add_source(tree_, 1, 0.5);
  traffic_.remove_source(0);
  EXPECT_DOUBLE_EQ(traffic_.tx_rate(0), 0.0);
  EXPECT_DOUBLE_EQ(traffic_.tx_rate(2), 0.5);
  EXPECT_DOUBLE_EQ(traffic_.delivery_rate(), 0.5);
  traffic_.remove_source(1);
  for (SensorId s = 0; s < 3; ++s) {
    EXPECT_DOUBLE_EQ(traffic_.tx_rate(s), 0.0);
    EXPECT_DOUBLE_EQ(traffic_.rx_rate(s), 0.0);
  }
  EXPECT_DOUBLE_EQ(traffic_.delivery_rate(), 0.0);
  EXPECT_DOUBLE_EQ(traffic_.offered_rate(), 0.0);
}

TEST_F(TrafficTest, ClearSources) {
  traffic_.add_source(tree_, 0, 0.25);
  traffic_.add_source(tree_, 2, 0.25);
  traffic_.clear_sources();
  EXPECT_EQ(traffic_.num_sources(), 0u);
  EXPECT_DOUBLE_EQ(traffic_.tx_rate(2), 0.0);
  EXPECT_DOUBLE_EQ(traffic_.delivery_rate(), 0.0);
  EXPECT_DOUBLE_EQ(traffic_.offered_rate(), 0.0);
}

TEST_F(TrafficTest, DuplicateSourceRejected) {
  traffic_.add_source(tree_, 0, 0.25);
  EXPECT_THROW(traffic_.add_source(tree_, 0, 0.25), InvalidArgument);
  EXPECT_THROW(traffic_.remove_source(1), InvalidArgument);
}

TEST_F(TrafficTest, UnreachableSourceStillTransmits) {
  // Node 0 alive but relay 1 dead: 0 cannot reach the BS.
  const RouteTable broken = build({true, false, true});
  traffic_.add_source(broken, 0, 0.25);
  EXPECT_DOUBLE_EQ(traffic_.tx_rate(0), 0.25);  // wasted transmissions
  EXPECT_DOUBLE_EQ(traffic_.tx_rate(2), 0.0);
  EXPECT_DOUBLE_EQ(traffic_.delivery_rate(), 0.0);
  // The wasted packets still count as offered load.
  EXPECT_DOUBLE_EQ(traffic_.offered_rate(), 0.25);
}

TEST_F(TrafficTest, RerouteFollowsNewTree) {
  traffic_.add_source(tree_, 0, 0.25);
  // Node 1 dies: the route breaks, reroute keeps the source registered but
  // with no deliverable path.
  const RouteTable broken = build({true, false, true});
  traffic_.reroute(broken);
  EXPECT_EQ(traffic_.num_sources(), 1u);
  EXPECT_DOUBLE_EQ(traffic_.delivery_rate(), 0.0);
  EXPECT_DOUBLE_EQ(traffic_.tx_rate(2), 0.0);
  // Node 1 revives: delivery resumes.
  traffic_.reroute(tree_);
  EXPECT_DOUBLE_EQ(traffic_.delivery_rate(), 0.25);
  EXPECT_DOUBLE_EQ(traffic_.tx_rate(1), 0.25);
}

TEST_F(TrafficTest, RemoveSubtractsCapturedPathAfterRebuild) {
  // Removal must subtract the path captured at add time, even when the
  // routing forest has been rebuilt (without reroute) in between — otherwise
  // stale rates leak onto the old relays forever.
  traffic_.add_source(tree_, 0, 0.25);
  const RouteTable rebuilt = build({true, false, true});
  (void)rebuilt;  // the model never sees it: no reroute() call
  traffic_.remove_source(0);
  for (SensorId s = 0; s < 3; ++s) {
    EXPECT_DOUBLE_EQ(traffic_.tx_rate(s), 0.0);
    EXPECT_DOUBLE_EQ(traffic_.rx_rate(s), 0.0);
  }
  EXPECT_DOUBLE_EQ(traffic_.delivery_rate(), 0.0);
  EXPECT_DOUBLE_EQ(traffic_.offered_rate(), 0.0);
  EXPECT_DOUBLE_EQ(traffic_.average_delivery_hops(), 0.0);
}

TEST_F(TrafficTest, RateConservationLossless) {
  // Lossless: everything offered by reachable sources is delivered, and
  // every relay forwards exactly what it receives plus its own load.
  traffic_.add_source(tree_, 0, 0.2);
  traffic_.add_source(tree_, 1, 0.3);
  traffic_.add_source(tree_, 2, 0.5);
  EXPECT_DOUBLE_EQ(traffic_.offered_rate(), 1.0);
  EXPECT_DOUBLE_EQ(traffic_.delivery_rate(), traffic_.offered_rate());
  for (SensorId s = 0; s < 3; ++s) {
    EXPECT_GE(traffic_.tx_rate(s), traffic_.rx_rate(s));
  }
  // The last hop into the BS carries the full load.
  EXPECT_DOUBLE_EQ(traffic_.tx_rate(2), 1.0);
}

TEST_F(TrafficTest, RadioPowerComposition) {
  RadioModel radio;
  radio.listen_duty_cycle = 0.0;  // isolate per-packet terms
  traffic_.add_source(tree_, 0, 1.0);
  const double etx = radio.tx_energy_per_packet().value();
  const double erx = radio.rx_energy_per_packet().value();
  EXPECT_NEAR(traffic_.radio_power(0, radio).value(),
              radio.idle_power.value() + etx, 1e-12);
  EXPECT_NEAR(traffic_.radio_power(1, radio).value(),
              radio.idle_power.value() + etx + erx, 1e-12);
}

TEST_F(TrafficTest, ListenDutyAddsFloor) {
  RadioModel radio;
  radio.listen_duty_cycle = 0.10;
  EXPECT_NEAR(traffic_.radio_power(0, radio).value(),
              radio.idle_power.value() + 0.10 * radio.rx_power.value(), 1e-12);
}

TEST_F(TrafficTest, ZeroRateSourceIsHarmless) {
  traffic_.add_source(tree_, 0, 0.0);
  EXPECT_DOUBLE_EQ(traffic_.tx_rate(0), 0.0);
  EXPECT_DOUBLE_EQ(traffic_.delivery_rate(), 0.0);
}

TEST_F(TrafficTest, ZeroRateSourcesDoNotPoisonHopAverage) {
  // Regression: average_delivery_hops() used to be guarded on the delivering
  // *source count*; a source set whose rates are all zero then divided
  // 0 / 0 into NaN. The guard is on the delivering rate now.
  traffic_.add_source(tree_, 0, 0.0);
  traffic_.add_source(tree_, 1, 0.0);
  const double hops = traffic_.average_delivery_hops();
  EXPECT_FALSE(std::isnan(hops));
  EXPECT_DOUBLE_EQ(hops, 0.0);
  // A real flow alongside the zero-rate ones averages normally: only the
  // delivering flow's 1-hop path counts.
  traffic_.add_source(tree_, 2, 0.5);
  EXPECT_DOUBLE_EQ(traffic_.average_delivery_hops(), 1.0);
}

TEST_F(TrafficTest, SourceIdValidation) {
  EXPECT_THROW(traffic_.add_source(tree_, 99, 0.25), InvalidArgument);
  EXPECT_THROW(traffic_.add_source(tree_, 0, -1.0), InvalidArgument);
}

// --- link-quality layer --------------------------------------------------

class LossyTrafficTest : public TrafficTest {
 protected:
  void SetUp() override {
    TrafficTest::SetUp();
    link_.enabled = true;
    link_.loss_floor = 0.0;
    link_.loss_at_range = 0.3;
    link_.loss_exponent = 2.0;
    link_.max_retx = 3;
    traffic_.set_link_model(link_, 12.0);
    // Every hop on the 10 m line at 12 m range: p = 0.3 * (10/12)^2.
    p_hop_ = 0.3 * (10.0 / 12.0) * (10.0 / 12.0);
    const double all_fail = std::pow(p_hop_, 3.0);
    success_ = 1.0 - all_fail;
    etx_ = (1.0 - all_fail) / (1.0 - p_hop_);
  }
  LinkConfig link_;
  double p_hop_ = 0.0, success_ = 0.0, etx_ = 0.0;
};

TEST_F(LossyTrafficTest, AttenuatesHopByHopAndChargesEtx) {
  traffic_.add_source(tree_, 0, 1.0);
  // Source pays ETX for its own packets; each relay receives the surviving
  // fraction and pays ETX to forward it.
  EXPECT_NEAR(traffic_.tx_rate(0), etx_, 1e-12);
  EXPECT_DOUBLE_EQ(traffic_.rx_rate(0), 0.0);
  EXPECT_NEAR(traffic_.rx_rate(1), success_, 1e-12);
  EXPECT_NEAR(traffic_.tx_rate(1), success_ * etx_, 1e-12);
  EXPECT_NEAR(traffic_.rx_rate(2), success_ * success_, 1e-12);
  EXPECT_NEAR(traffic_.tx_rate(2), success_ * success_ * etx_, 1e-12);
  // Delivery is the thrice-attenuated rate; offered is the raw rate.
  EXPECT_NEAR(traffic_.delivery_rate(), std::pow(success_, 3.0), 1e-12);
  EXPECT_DOUBLE_EQ(traffic_.offered_rate(), 1.0);
  EXPECT_LT(traffic_.delivery_rate(), traffic_.offered_rate());
}

TEST_F(LossyTrafficTest, RemoveAndClearReturnToQuiescence) {
  traffic_.add_source(tree_, 0, 0.7);
  traffic_.add_source(tree_, 2, 0.4);
  traffic_.remove_source(0);
  traffic_.remove_source(2);
  for (SensorId s = 0; s < 3; ++s) {
    EXPECT_DOUBLE_EQ(traffic_.tx_rate(s), 0.0);
    EXPECT_DOUBLE_EQ(traffic_.rx_rate(s), 0.0);
  }
  EXPECT_DOUBLE_EQ(traffic_.delivery_rate(), 0.0);
  EXPECT_DOUBLE_EQ(traffic_.offered_rate(), 0.0);
  EXPECT_DOUBLE_EQ(traffic_.average_delivery_hops(), 0.0);
}

TEST_F(LossyTrafficTest, RerouteRecapturesLinkQuality) {
  traffic_.add_source(tree_, 0, 1.0);
  const double before = traffic_.delivery_rate();
  traffic_.reroute(tree_);  // same forest: captures must reproduce exactly
  EXPECT_DOUBLE_EQ(traffic_.delivery_rate(), before);
  EXPECT_DOUBLE_EQ(traffic_.offered_rate(), 1.0);
}

TEST_F(LossyTrafficTest, RxDutyTaxOnlyForReceivers) {
  link_.rx_duty_tax = 0.05;
  traffic_.set_link_model(link_, 12.0);
  RadioModel radio;
  radio.listen_duty_cycle = 0.0;
  traffic_.add_source(tree_, 0, 1.0);
  // Node 0 only transmits: no tax. Node 1 receives: taxed.
  const double p0 = traffic_.radio_power(0, radio).value();
  const double p1 = traffic_.radio_power(1, radio).value();
  EXPECT_NEAR(p0, radio.idle_power.value() +
                      traffic_.tx_rate(0) * radio.tx_energy_per_packet().value(),
              1e-12);
  EXPECT_NEAR(p1, radio.idle_power.value() +
                      traffic_.tx_rate(1) * radio.tx_energy_per_packet().value() +
                      traffic_.rx_rate(1) * radio.rx_energy_per_packet().value() +
                      0.05 * radio.rx_power.value(),
              1e-12);
}

TEST_F(LossyTrafficTest, LosslessConfigMatchesLegacyAccounting) {
  // enabled=true but zero loss terms: ETX and success collapse to 1, so the
  // numbers must equal the lossless fast path bit for bit.
  LinkConfig zero;
  zero.enabled = true;
  zero.loss_floor = 0.0;
  zero.loss_at_range = 0.0;
  traffic_.set_link_model(zero, 12.0);
  traffic_.add_source(tree_, 0, 0.25);
  TrafficModel plain(3);
  plain.add_source(tree_, 0, 0.25);
  for (SensorId s = 0; s < 3; ++s) {
    EXPECT_DOUBLE_EQ(traffic_.tx_rate(s), plain.tx_rate(s));
    EXPECT_DOUBLE_EQ(traffic_.rx_rate(s), plain.rx_rate(s));
  }
  EXPECT_DOUBLE_EQ(traffic_.delivery_rate(), plain.delivery_rate());
  EXPECT_DOUBLE_EQ(traffic_.average_delivery_hops(),
                   plain.average_delivery_hops());
}

}  // namespace
}  // namespace wrsn
