#include <gtest/gtest.h>

#include "core/error.hpp"
#include "sched/request.hpp"

namespace wrsn {
namespace {

RechargeRequest make_request(SensorId s, ClusterId c, Vec2 pos, double demand,
                             bool critical = false) {
  RechargeRequest r;
  r.sensor = s;
  r.cluster = c;
  r.pos = pos;
  r.demand = Joule{demand};
  r.critical = critical;
  return r;
}

TEST(RechargeNodeList, AddRemoveContains) {
  RechargeNodeList list;
  EXPECT_TRUE(list.empty());
  list.add(make_request(3, 0, {1, 1}, 100.0));
  EXPECT_EQ(list.size(), 1u);
  EXPECT_TRUE(list.contains(3));
  EXPECT_FALSE(list.contains(4));
  EXPECT_TRUE(list.remove(3));
  EXPECT_FALSE(list.remove(3));
  EXPECT_TRUE(list.empty());
}

TEST(RechargeNodeList, RejectsDuplicatesAndBadInput) {
  RechargeNodeList list;
  list.add(make_request(1, 0, {0, 0}, 10.0));
  EXPECT_THROW(list.add(make_request(1, 0, {0, 0}, 10.0)), InvalidArgument);
  EXPECT_THROW(list.add(make_request(kInvalidId, 0, {0, 0}, 10.0)), InvalidArgument);
  EXPECT_THROW(list.add(make_request(2, 0, {0, 0}, -5.0)), InvalidArgument);
}

TEST(RechargeNodeList, UpdateRefreshesFields) {
  RechargeNodeList list;
  list.add(make_request(1, 0, {0, 0}, 10.0));
  list.update(1, Joule{42.0}, true, 0.42);
  EXPECT_DOUBLE_EQ(list.requests()[0].demand.value(), 42.0);
  EXPECT_DOUBLE_EQ(list.requests()[0].fraction, 0.42);
  EXPECT_TRUE(list.requests()[0].critical);
  EXPECT_THROW(list.update(9, Joule{1.0}, false, 0.5), InvalidArgument);
}

TEST(Aggregate, ClusterRequestsFoldIntoOneItem) {
  std::vector<RechargeRequest> reqs = {
      make_request(1, 5, {0, 0}, 100.0),
      make_request(2, 5, {2, 0}, 200.0),
      make_request(3, 5, {4, 0}, 300.0),
  };
  const auto items = aggregate_requests(reqs);
  ASSERT_EQ(items.size(), 1u);
  EXPECT_EQ(items[0].cluster, 5u);
  EXPECT_DOUBLE_EQ(items[0].demand.value(), 600.0);
  EXPECT_EQ(items[0].pos, (Vec2{2.0, 0.0}));  // centroid
  EXPECT_EQ(items[0].sensors, (std::vector<SensorId>{1, 2, 3}));
  EXPECT_FALSE(items[0].critical);
}

TEST(Aggregate, CriticalPropagatesFromAnyMember) {
  std::vector<RechargeRequest> reqs = {
      make_request(1, 5, {0, 0}, 100.0, false),
      make_request(2, 5, {2, 0}, 200.0, true),
  };
  const auto items = aggregate_requests(reqs);
  ASSERT_EQ(items.size(), 1u);
  EXPECT_TRUE(items[0].critical);
}

TEST(Aggregate, UnclusteredStaySingles) {
  std::vector<RechargeRequest> reqs = {
      make_request(4, kInvalidId, {1, 1}, 50.0),
      make_request(2, kInvalidId, {3, 3}, 60.0),
  };
  const auto items = aggregate_requests(reqs);
  ASSERT_EQ(items.size(), 2u);
  // Singles sorted by sensor id.
  EXPECT_EQ(items[0].sensors, (std::vector<SensorId>{2}));
  EXPECT_EQ(items[1].sensors, (std::vector<SensorId>{4}));
  EXPECT_EQ(items[0].cluster, kInvalidId);
}

TEST(Aggregate, MixedClustersAndSinglesOrdering) {
  std::vector<RechargeRequest> reqs = {
      make_request(9, kInvalidId, {9, 9}, 10.0),
      make_request(1, 2, {0, 0}, 100.0),
      make_request(3, 1, {5, 5}, 70.0),
      make_request(2, 2, {2, 0}, 100.0),
  };
  const auto items = aggregate_requests(reqs);
  ASSERT_EQ(items.size(), 3u);
  // Clusters first in ascending cluster-id order, then singles.
  EXPECT_EQ(items[0].cluster, 1u);
  EXPECT_EQ(items[1].cluster, 2u);
  EXPECT_EQ(items[1].sensors, (std::vector<SensorId>{1, 2}));
  EXPECT_EQ(items[2].cluster, kInvalidId);
}

TEST(Aggregate, EmptyInput) {
  EXPECT_TRUE(aggregate_requests({}).empty());
}

TEST(Aggregate, DemandConservation) {
  // Total demand across items equals total across requests.
  std::vector<RechargeRequest> reqs;
  double total = 0.0;
  for (int i = 0; i < 20; ++i) {
    const double d = 10.0 * (i + 1);
    reqs.push_back(make_request(i, i % 4 == 0 ? kInvalidId : i % 4,
                                {static_cast<double>(i), 0.0}, d));
    total += d;
  }
  const auto items = aggregate_requests(reqs);
  double got = 0.0;
  std::size_t sensor_count = 0;
  for (const auto& item : items) {
    got += item.demand.value();
    sensor_count += item.sensors.size();
  }
  EXPECT_DOUBLE_EQ(got, total);
  EXPECT_EQ(sensor_count, reqs.size());
}

}  // namespace
}  // namespace wrsn
