// Tests for the library-extension schedulers (nearest-first, FCFS) and the
// optional 2-opt tour polishing.
#include <gtest/gtest.h>

#include "sched/planner.hpp"
#include "sim/runner.hpp"
#include "sim/world.hpp"

namespace wrsn {
namespace {

RechargeItem item_at(Vec2 pos, double demand, bool critical = false,
                     SensorId sensor = 0) {
  RechargeItem it;
  it.pos = pos;
  it.demand = Joule{demand};
  it.critical = critical;
  it.sensors = {sensor};
  return it;
}

PlannerParams params() { return {JoulePerMeter{5.6}, Vec2{100, 100}}; }

TEST(NearestNext, PicksClosestRegardlessOfDemand) {
  const std::vector<RechargeItem> items = {
      item_at({190, 100}, 5000.0),  // far, rich
      item_at({105, 100}, 100.0),   // near, poor
  };
  RvPlanState rv{{100, 100}, Joule{50000.0}};
  std::vector<bool> taken(2, false);
  const auto got = nearest_next(rv, items, taken, params());
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, 1u);
}

TEST(NearestNext, CriticalStillDominates) {
  const std::vector<RechargeItem> items = {
      item_at({105, 100}, 100.0, false),
      item_at({190, 100}, 100.0, true),
  };
  RvPlanState rv{{100, 100}, Joule{50000.0}};
  std::vector<bool> taken(2, false);
  const auto got = nearest_next(rv, items, taken, params());
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, 1u);
}

TEST(NearestNext, RespectsBudgetAndTaken) {
  const std::vector<RechargeItem> items = {
      item_at({105, 100}, 100.0),
      item_at({110, 100}, 100.0),
  };
  RvPlanState rv{{100, 100}, Joule{250.0}};  // item1 costs 5.6*20+100 = 212
  std::vector<bool> taken = {true, false};
  const auto got = nearest_next(rv, items, taken, params());
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, 1u);
  RvPlanState broke{{100, 100}, Joule{50.0}};
  EXPECT_FALSE(nearest_next(broke, items, taken, params()).has_value());
}

TEST(EdfNext, PicksLowestFractionRegardlessOfGeometry) {
  std::vector<RechargeItem> items = {
      item_at({105, 100}, 100.0),  // near
      item_at({190, 100}, 100.0),  // far but more urgent
  };
  items[0].min_fraction = 0.45;
  items[1].min_fraction = 0.05;
  RvPlanState rv{{100, 100}, Joule{50000.0}};
  std::vector<bool> taken(2, false);
  const auto got = edf_next(rv, items, taken, params());
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, 1u);
}

TEST(EdfNext, RespectsBudget) {
  std::vector<RechargeItem> items = {item_at({190, 100}, 100.0)};
  items[0].min_fraction = 0.01;
  RvPlanState broke{{100, 100}, Joule{50.0}};
  std::vector<bool> taken(1, false);
  EXPECT_FALSE(edf_next(broke, items, taken, params()).has_value());
}

SimConfig ext_config(const std::string& sched) {
  SimConfig cfg;
  cfg.num_sensors = 150;
  cfg.num_targets = 6;
  cfg.num_rvs = 2;
  cfg.field_side = meters(110.0);
  cfg.sim_duration = days(8.0);
  cfg.radio.listen_duty_cycle = 0.12;
  cfg.scheduler = sched;
  cfg.seed = 777;
  return cfg;
}

TEST(ExtensionSchedulers, NearestFirstRunsAndServes) {
  const auto r = run_replica(ext_config("nearest-first"));
  EXPECT_GT(r.sensors_recharged, 10u);
  EXPECT_GT(r.coverage_ratio, 0.8);
}

TEST(ExtensionSchedulers, FcfsRunsAndServes) {
  const auto r = run_replica(ext_config("fcfs"));
  EXPECT_GT(r.sensors_recharged, 10u);
  EXPECT_GT(r.coverage_ratio, 0.8);
}

TEST(ExtensionSchedulers, EdfRunsAndServes) {
  const auto r = run_replica(ext_config("edf"));
  EXPECT_GT(r.sensors_recharged, 10u);
  EXPECT_GT(r.coverage_ratio, 0.8);
  // EDF chases the most-depleted nodes, so fairness across served sensors
  // stays high.
  EXPECT_GT(r.recharge_fairness_jain, 0.5);
}

TEST(ExtensionSchedulers, FcfsHasBoundedLatencySpread) {
  // FCFS trades distance for fairness: it must still clear the queue.
  const auto fcfs = run_replica(ext_config("fcfs"));
  const auto nearest = run_replica(ext_config("nearest-first"));
  EXPECT_GT(fcfs.rv_travel_distance.value(), nearest.rv_travel_distance.value());
}

TEST(TwoOptTours, NeverIncreasesTravelMaterially) {
  SimConfig off = ext_config("combined");
  SimConfig on = ext_config("combined");
  on.two_opt_tours = true;
  const auto r_off = run_replica(off);
  const auto r_on = run_replica(on);
  // The polished plans can reshuffle downstream decisions, so require only
  // "no material regression" plus identical service accounting sanity.
  EXPECT_LT(r_on.rv_travel_distance.value(),
            r_off.rv_travel_distance.value() * 1.05);
  EXPECT_GT(r_on.sensors_recharged, 10u);
}

TEST(ExtensionSchedulers, AllRegisteredSchedulersDeterministic) {
  // Driven off the registry, so a newly registered policy is covered
  // automatically.
  for (const std::string& sched : scheduler_names()) {
    SimConfig cfg = ext_config(sched);
    cfg.sim_duration = days(4.0);
    World a(cfg), b(cfg);
    const auto ra = a.run();
    const auto rb = b.run();
    EXPECT_DOUBLE_EQ(ra.rv_travel_distance.value(), rb.rv_travel_distance.value())
        << sched;
  }
}

}  // namespace
}  // namespace wrsn
