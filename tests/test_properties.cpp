// Property-based sweeps across random configurations: system-level
// invariants that must hold for ANY valid parameterization.
#include <gtest/gtest.h>

#include "core/rng.hpp"
#include "sim/world.hpp"

namespace wrsn {
namespace {

SimConfig random_config(std::uint64_t seed) {
  Xoshiro256 rng(seed);
  SimConfig cfg;
  cfg.num_sensors = 40 + rng.uniform_int(160);
  cfg.num_targets = 1 + rng.uniform_int(8);
  cfg.num_rvs = 1 + rng.uniform_int(3);
  cfg.field_side = meters(60.0 + rng.uniform(0.0, 120.0));
  cfg.sim_duration = days(1.0 + rng.uniform(0.0, 3.0));
  cfg.energy_request_percentage = rng.uniform(0.0, 1.0);
  cfg.energy_request_control = rng.bernoulli(0.7);
  cfg.activation = rng.bernoulli(0.5) ? ActivationPolicy::kRoundRobin
                                      : ActivationPolicy::kFullTime;
  const int sched = static_cast<int>(rng.uniform_int(3));
  cfg.scheduler = sched == 0 ? "greedy" : sched == 1 ? "partition" : "combined";
  cfg.radio.listen_duty_cycle = rng.uniform(0.0, 0.4);
  cfg.seed = seed * 7919 + 13;
  return cfg;
}

class WorldProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WorldProperty, SystemInvariantsHoldUnderRandomConfigs) {
  const SimConfig cfg = random_config(GetParam());
  World w(cfg);
  const MetricsReport r = w.run();

  // --- report sanity ------------------------------------------------------
  EXPECT_DOUBLE_EQ(r.duration.value(), cfg.sim_duration.value());
  EXPECT_GE(r.coverage_ratio, 0.0);
  EXPECT_LE(r.coverage_ratio, 1.0 + 1e-9);
  EXPECT_NEAR(r.coverage_ratio + r.missing_rate, 1.0, 1e-9);
  EXPECT_GE(r.nonfunctional_pct, 0.0);
  EXPECT_LE(r.nonfunctional_pct, 100.0);
  EXPECT_GE(r.rv_travel_energy.value(), 0.0);
  EXPECT_GE(r.energy_recharged.value(), 0.0);
  EXPECT_GE(r.packets_delivered, 0.0);
  EXPECT_LE(r.avg_alive_sensors, static_cast<double>(cfg.num_sensors) + 1e-9);

  // Travel energy is exactly e_m times travel distance.
  EXPECT_NEAR(r.rv_travel_energy.value(),
              cfg.rv.move_cost.value() * r.rv_travel_distance.value(),
              1e-6 * (1.0 + r.rv_travel_energy.value()));

  // Served never exceeds requested.
  EXPECT_LE(r.sensors_recharged, r.recharge_requests);

  // --- battery invariants ----------------------------------------------
  for (const Sensor& s : w.network().sensors()) {
    EXPECT_GE(s.battery.level().value(), 0.0);
    EXPECT_LE(s.battery.level().value(), s.battery.capacity().value() + 1e-9);
  }
  for (const Rv& rv : w.rvs()) {
    EXPECT_GE(rv.battery.level().value(), -1e-9);
    EXPECT_LE(rv.battery.level().value(), rv.battery.capacity().value() + 1e-9);
  }

  // --- RV energy conservation -----------------------------------------
  double residual = 0.0;
  for (const Rv& rv : w.rvs()) residual += rv.battery.level().value();
  const double initial =
      cfg.rv.capacity.value() * static_cast<double>(cfg.num_rvs);
  EXPECT_NEAR(r.rv_travel_energy.value() + r.energy_recharged.value() + residual,
              initial + r.rv_base_energy_drawn.value(),
              1e-6 * (1.0 + initial + r.rv_base_energy_drawn.value()));

  // --- sensor-side energy conservation ----------------------------------
  // initial levels + recharged == current levels + consumed (exactly).
  {
    double levels = 0.0;
    for (const Sensor& s : w.network().sensors()) {
      levels += s.battery.level().value();
    }
    const double initial =
        cfg.battery.capacity.value() * static_cast<double>(cfg.num_sensors);
    const double lhs = initial + r.energy_recharged.value();
    const double rhs = levels + w.sensor_energy_consumed().value();
    EXPECT_NEAR(lhs, rhs, 1e-6 * (1.0 + lhs));
  }

  // Fairness index lies in (0, 1].
  EXPECT_GT(r.recharge_fairness_jain, 0.0);
  EXPECT_LE(r.recharge_fairness_jain, 1.0 + 1e-12);

  // --- structural invariants ---------------------------------------------
  const auto& cs = w.clusters();
  std::vector<int> assigned(cfg.num_sensors, 0);
  for (TargetId t = 0; t < cs.num_clusters(); ++t) {
    for (SensorId s : cs.members[t]) {
      ++assigned[s];
      // Constraint (5): at most one target per sensor.
      EXPECT_LE(assigned[s], 1);
    }
  }

  // Requests outstanding refer to distinct sensors with the flag set.
  for (const auto& req : w.recharge_list().requests()) {
    EXPECT_TRUE(w.network().sensor(req.sensor).recharge_requested);
  }

  // Snapshot consistency at the end.
  const StateSnapshot snap = w.snapshot();
  EXPECT_LE(snap.covered_targets, snap.coverable_targets);
  EXPECT_LE(snap.coverable_targets, cfg.num_targets);
  EXPECT_EQ(snap.alive_sensors, w.network().alive_count());
}

INSTANTIATE_TEST_SUITE_P(RandomConfigs, WorldProperty,
                         ::testing::Range<std::uint64_t>(0, 20));

// Determinism as a property: every random config replays identically.
class DeterminismProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DeterminismProperty, ReplayIsExact) {
  SimConfig cfg = random_config(GetParam());
  cfg.sim_duration = days(1.0);
  World a(cfg), b(cfg);
  const auto ra = a.run();
  const auto rb = b.run();
  EXPECT_DOUBLE_EQ(ra.rv_travel_distance.value(), rb.rv_travel_distance.value());
  EXPECT_DOUBLE_EQ(ra.energy_recharged.value(), rb.energy_recharged.value());
  EXPECT_DOUBLE_EQ(ra.packets_delivered, rb.packets_delivered);
  EXPECT_EQ(ra.sensor_deaths, rb.sensor_deaths);
  EXPECT_EQ(ra.recharge_requests, rb.recharge_requests);
  for (std::size_t i = 0; i < a.rvs().size(); ++i) {
    EXPECT_EQ(a.rvs()[i].pos, b.rvs()[i].pos);
    EXPECT_DOUBLE_EQ(a.rvs()[i].battery.level().value(),
                     b.rvs()[i].battery.level().value());
  }
  for (SensorId s = 0; s < cfg.num_sensors; ++s) {
    EXPECT_DOUBLE_EQ(a.network().sensor(s).battery.level().value(),
                     b.network().sensor(s).battery.level().value());
  }
}

INSTANTIATE_TEST_SUITE_P(RandomConfigs, DeterminismProperty,
                         ::testing::Range<std::uint64_t>(100, 110));

}  // namespace
}  // namespace wrsn
