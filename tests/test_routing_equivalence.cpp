// Routing-policy equivalence suite. For every non-default routing policy
// (and with the lossy link layer both off and on):
//  - the incremental and reference world engines must stay bit-identical
//    (same report JSON, trace, battery bit patterns), proving the pluggable
//    routing layer feeds both engines the same forests and drains;
//  - a checkpoint taken mid-run must restore byte-identically, proving the
//    snapshot codec carries the routing knob and the link-layer flow state
//    (per-hop ETX/success captures, offered-rate accumulator) in full.
#include <gtest/gtest.h>

#include <bit>
#include <sstream>
#include <string>
#include <vector>

#include "core/rng.hpp"
#include "sim/snapshot.hpp"
#include "sim/world.hpp"

namespace wrsn {
namespace {

struct Scenario {
  std::string routing;
  bool lossy = false;
  std::uint64_t seed = 0;
};

std::string describe(const Scenario& sc) {
  std::ostringstream os;
  os << "routing=" << sc.routing << " link=" << (sc.lossy ? "lossy" : "off")
     << " seed=" << sc.seed;
  return os.str();
}

// The battery-stressed recipe of the other equivalence suites, with the
// routing policy and link layer under test switched in.
SimConfig eq_config(const Scenario& sc) {
  SimConfig cfg;
  cfg.num_sensors = 36 + (sc.seed % 3) * 12;  // 36..60
  cfg.num_targets = 4;
  cfg.num_rvs = 2;
  cfg.field_side = meters(90.0);
  cfg.sim_duration = hours(3.0);
  cfg.seed = 0xB0A7 + sc.seed * 7919;
  cfg.target_motion = TargetMotion::kRandomWaypoint;
  cfg.target_period = minutes(30.0);
  cfg.target_speed = MeterPerSecond{1.0};
  cfg.scheduler = "combined";
  cfg.routing = sc.routing;
  cfg.battery.capacity = Joule{150.0};
  cfg.radio.listen_duty_cycle = 0.2;
  if (sc.lossy) {
    cfg.link.enabled = true;
    cfg.link.loss_floor = 0.02;
    cfg.link.loss_at_range = 0.35;
    cfg.link.loss_exponent = 2.0;
    cfg.link.max_retx = 3;
    cfg.link.rx_duty_tax = 0.02;
  }
  return cfg;
}

struct RunResult {
  std::string report_json;
  std::vector<World::TraceEvent> trace;
  std::vector<std::uint64_t> battery_bits;
  std::uint64_t events = 0;
};

void harvest(World& w, RunResult& out) {
  out.report_json = to_json(w.report());
  out.battery_bits.clear();
  for (const Sensor& s : w.network().sensors()) {
    out.battery_bits.push_back(
        std::bit_cast<std::uint64_t>(s.battery.level().value()));
  }
  out.events = w.events_processed();
}

RunResult run_engine(const SimConfig& cfg, WorldEngine engine) {
  RunResult out;
  World w(cfg, engine);
  w.set_tracer([&out](const World::TraceEvent& ev) { out.trace.push_back(ev); });
  w.run_until(cfg.sim_duration);
  harvest(w, out);
  return out;
}

void expect_same(const RunResult& a, const RunResult& b, const std::string& what) {
  EXPECT_EQ(a.report_json, b.report_json) << what;
  EXPECT_EQ(a.battery_bits, b.battery_bits) << what;
  EXPECT_EQ(a.events, b.events) << what;
  ASSERT_EQ(a.trace.size(), b.trace.size()) << what;
  for (std::size_t i = 0; i < a.trace.size(); ++i) {
    const auto& x = a.trace[i];
    const auto& y = b.trace[i];
    ASSERT_TRUE(x.time == y.time && x.kind == y.kind && x.subject == y.subject &&
                x.epoch == y.epoch && x.queue_size == y.queue_size)
        << what << " trace diverges at event " << i;
  }
}

class RoutingEquivalence : public testing::TestWithParam<Scenario> {};

TEST_P(RoutingEquivalence, EnginesAgreeBitForBit) {
  const Scenario& sc = GetParam();
  const SimConfig cfg = eq_config(sc);
  const RunResult inc = run_engine(cfg, WorldEngine::kIncremental);
  const RunResult ref = run_engine(cfg, WorldEngine::kReference);
  ASSERT_GT(inc.events, 2u) << describe(sc);
  expect_same(inc, ref, describe(sc));
}

TEST_P(RoutingEquivalence, MidRunCheckpointRestoresByteIdentically) {
  const Scenario& sc = GetParam();
  const std::string what = describe(sc);
  const SimConfig cfg = eq_config(sc);
  const RunResult golden = run_engine(cfg, WorldEngine::kIncremental);
  ASSERT_GT(golden.events, 2u) << what;

  Xoshiro256 pick = RngStreams(cfg.seed ^ 0x7A7A).stream("snapshot-index");
  const std::uint64_t stop_at = 1 + pick.uniform_int(golden.events - 1);

  RunResult stitched;
  WorldSnapshot snap;
  {
    World w(cfg, WorldEngine::kIncremental);
    w.set_tracer(
        [&stitched](const World::TraceEvent& ev) { stitched.trace.push_back(ev); });
    w.set_checkpoint_hook(
        [stop_at](const World& world) { return world.events_processed() >= stop_at; });
    w.run_until(cfg.sim_duration);
    ASSERT_FALSE(w.finished()) << what;
    snap = deserialize_snapshot(serialize_snapshot(w.checkpoint()));
  }

  // The snapshot must carry the policy name: restoring rebuilds routes with
  // the same non-default scheme, and re-checkpointing is a fixed point.
  EXPECT_NE(snap.config_text.find("routing = " + sc.routing), std::string::npos)
      << what;
  {
    World restored(snap);
    const WorldSnapshot again = restored.checkpoint();
    EXPECT_EQ(again.state, snap.state) << what << " (restore is not a fixed point)";
  }

  {
    World w(snap);
    w.set_tracer(
        [&stitched](const World::TraceEvent& ev) { stitched.trace.push_back(ev); });
    w.run_until(cfg.sim_duration);
    EXPECT_TRUE(w.finished()) << what;
    harvest(w, stitched);
  }
  expect_same(golden, stitched, what);
}

std::vector<Scenario> scenarios() {
  std::vector<Scenario> out;
  for (const char* routing : {"greedy_geo", "mst_backbone", "cluster_backbone"}) {
    for (const bool lossy : {false, true}) {
      for (std::uint64_t seed = 0; seed < 2; ++seed) {
        out.push_back({routing, lossy, seed});
      }
    }
  }
  // The default policy with the link layer on: shortest_path x lossless is
  // already pinned bit-identically by the snapshot-equivalence suite.
  out.push_back({"shortest_path", true, 0});
  return out;  // 3 x 2 x 2 + 1 = 13 instances
}

std::string scenario_name(const testing::TestParamInfo<Scenario>& info) {
  const Scenario& sc = info.param;
  std::ostringstream os;
  os << sc.routing << "_" << (sc.lossy ? "lossy" : "clean") << "_s" << sc.seed;
  return os.str();
}

INSTANTIATE_TEST_SUITE_P(PoliciesAndLinkLayer, RoutingEquivalence,
                         testing::ValuesIn(scenarios()), scenario_name);

}  // namespace
}  // namespace wrsn
