#include <gtest/gtest.h>

#include <cmath>

#include "core/rng.hpp"
#include "core/stats.hpp"
#include "net/network.hpp"
#include "net/stats.hpp"

namespace wrsn {
namespace {

TEST(RunningStats, Empty) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.sem(), 0.0);
  EXPECT_DOUBLE_EQ(s.ci95_halfwidth(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_DOUBLE_EQ(s.ci95_halfwidth(), 0.0);
}

TEST(RunningStats, KnownMoments) {
  RunningStats s = summarize({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0});
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1 = 7: sum sq dev = 32 -> 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, MatchesTwoPassOnRandomData) {
  Xoshiro256 rng(3);
  std::vector<double> xs;
  for (int i = 0; i < 5000; ++i) xs.push_back(rng.normal(10.0, 2.0));
  const RunningStats s = summarize(xs);
  double mean = 0.0;
  for (double x : xs) mean += x;
  mean /= static_cast<double>(xs.size());
  double var = 0.0;
  for (double x : xs) var += (x - mean) * (x - mean);
  var /= static_cast<double>(xs.size() - 1);
  EXPECT_NEAR(s.mean(), mean, 1e-9);
  EXPECT_NEAR(s.variance(), var, 1e-6);
}

TEST(RunningStats, NumericallyStableAtLargeOffset) {
  // Classic catastrophic-cancellation case for naive sum-of-squares.
  RunningStats s = summarize({1e9 + 4.0, 1e9 + 7.0, 1e9 + 13.0, 1e9 + 16.0});
  EXPECT_NEAR(s.mean(), 1e9 + 10.0, 1e-3);
  EXPECT_NEAR(s.variance(), 30.0, 1e-6);
}

TEST(RunningStats, Ci95Behaviour) {
  // Two identical values: zero CI. Two different: wide t-based CI.
  RunningStats a = summarize({3.0, 3.0});
  EXPECT_DOUBLE_EQ(a.ci95_halfwidth(), 0.0);
  RunningStats b = summarize({0.0, 10.0});
  // dof=1 -> t=12.706; sem = stddev/sqrt(2) = (10/sqrt2)/sqrt2 = 5.
  EXPECT_NEAR(b.ci95_halfwidth(), 12.706 * 5.0, 1e-9);
  // CI shrinks with more samples of the same spread.
  RunningStats c = summarize({0, 10, 0, 10, 0, 10, 0, 10});
  EXPECT_LT(c.ci95_halfwidth(), b.ci95_halfwidth());
}

TEST(RunningStats, CoverageOfTrueMean) {
  // ~95% of CIs built from normal samples must contain the true mean.
  Xoshiro256 rng(17);
  int contained = 0;
  const int trials = 400;
  for (int t = 0; t < trials; ++t) {
    RunningStats s;
    for (int i = 0; i < 10; ++i) s.add(rng.normal(50.0, 5.0));
    if (std::abs(s.mean() - 50.0) <= s.ci95_halfwidth()) ++contained;
  }
  EXPECT_NEAR(static_cast<double>(contained) / trials, 0.95, 0.04);
}

// --- network stats ------------------------------------------------------

Network make_network(const SimConfig& cfg, std::uint64_t seed) {
  RngStreams streams(seed);
  Xoshiro256 deploy = streams.stream("deployment");
  Xoshiro256 targets = streams.stream("target-placement");
  return Network(cfg, deploy, targets);
}

TEST(NetworkStats, TableIIDeployment) {
  SimConfig cfg;  // paper defaults
  Network net = make_network(cfg, 5);
  const NetworkStats stats = compute_stats(net);
  EXPECT_EQ(stats.num_sensors, 500u);
  EXPECT_GT(stats.avg_degree, 3.0);   // ~5.6 expected at d_c=12
  EXPECT_LT(stats.avg_degree, 9.0);
  EXPECT_GT(stats.reachable_sensors, 450u);
  EXPECT_GT(stats.avg_hops_to_base, 5.0);  // field radius ~100+ m, hops <= 12 m
  EXPECT_GT(stats.avg_coverage_degree, 1.5);
  EXPECT_LT(stats.avg_coverage_degree, 4.0);
  EXPECT_GE(stats.connected_components, 1u);
}

TEST(NetworkStats, DegreeEdgeConsistency) {
  SimConfig cfg;
  cfg.num_sensors = 120;
  cfg.field_side = meters(90.0);
  Network net = make_network(cfg, 9);
  const NetworkStats stats = compute_stats(net);
  // Handshake over all nodes (sensors + BS); sensor-side average over N.
  EXPECT_LE(stats.min_degree, static_cast<std::size_t>(stats.avg_degree) + 1);
  EXPECT_GE(stats.max_degree, static_cast<std::size_t>(stats.avg_degree));
}

TEST(NetworkStats, SparseNetworkFragmentsAndIsolates) {
  SimConfig cfg;
  cfg.num_sensors = 40;
  cfg.field_side = meters(300.0);
  cfg.comm_range = meters(10.0);  // far too sparse to connect
  Network net = make_network(cfg, 3);
  const NetworkStats stats = compute_stats(net);
  EXPECT_GT(stats.connected_components, 5u);
  EXPECT_LT(stats.reachable_sensors, 10u);
  EXPECT_GT(stats.isolated_sensors, 0u);
}

TEST(NetworkStats, RouteLengthBoundedByHops) {
  SimConfig cfg;
  cfg.num_sensors = 200;
  cfg.field_side = meters(120.0);
  Network net = make_network(cfg, 7);
  const NetworkStats stats = compute_stats(net);
  // Each hop is at most d_c long.
  EXPECT_LE(stats.avg_route_length_m,
            stats.avg_hops_to_base * cfg.comm_range.value() + 1e-9);
}

}  // namespace
}  // namespace wrsn
