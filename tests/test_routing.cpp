#include <gtest/gtest.h>

#include <limits>

#include "core/rng.hpp"
#include "net/deployment.hpp"
#include "net/graph.hpp"
#include "net/routing.hpp"

namespace wrsn {
namespace {

// Builds the default shortest_path forest the way Network does: positions
// with the base station appended, policy resolved through the registry.
RouteTable build_tree(const CommGraph& g, const std::vector<Vec2>& sensors,
                      Vec2 bs, const std::vector<bool>& usable) {
  std::vector<Vec2> all = sensors;
  all.push_back(bs);
  RouteTable table;
  const RoutingBuildInput in{&g, &all, &usable};
  RoutingRegistry::instance().create("shortest_path")->build(in, table);
  return table;
}

// Floyd-Warshall reference for cross-checking Dijkstra.
std::vector<std::vector<double>> floyd_warshall(const CommGraph& g,
                                                const std::vector<bool>& usable) {
  const std::size_t n = g.num_nodes();
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<std::vector<double>> d(n, std::vector<double>(n, kInf));
  auto ok = [&](std::size_t v) {
    return v == g.base_station_index() || usable[v];
  };
  for (std::size_t u = 0; u < n; ++u) {
    if (!ok(u)) continue;
    d[u][u] = 0.0;
    for (const auto& e : g.neighbors(u)) {
      if (ok(e.to)) d[u][e.to] = e.length;
    }
  }
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        if (d[i][k] + d[k][j] < d[i][j]) d[i][j] = d[i][k] + d[k][j];
      }
    }
  }
  return d;
}

TEST(Routing, LineTopologyDistances) {
  const std::vector<Vec2> pos = {{0, 0}, {10, 0}, {20, 0}};
  CommGraph g(pos, Vec2{30, 0}, 12.0);
  const RouteTable tree =
      build_tree(g, pos, Vec2{30, 0}, std::vector<bool>(3, true));
  EXPECT_DOUBLE_EQ(tree.distance_to_base(2), 10.0);
  EXPECT_DOUBLE_EQ(tree.distance_to_base(1), 20.0);
  EXPECT_DOUBLE_EQ(tree.distance_to_base(0), 30.0);
  EXPECT_EQ(tree.next_hop(0), 1u);
  EXPECT_EQ(tree.next_hop(1), 2u);
  EXPECT_EQ(tree.next_hop(2), 3u);
  EXPECT_EQ(tree.next_hop(3), kInvalidId);
  EXPECT_EQ(tree.hops_to_base(0), 3u);
  EXPECT_EQ(tree.path_to_base(0), (std::vector<std::size_t>{0, 1, 2, 3}));
  EXPECT_DOUBLE_EQ(tree.hop_length(0), 10.0);
  EXPECT_DOUBLE_EQ(tree.hop_length(2), 10.0);
}

TEST(Routing, DeadRelayBreaksPath) {
  const std::vector<Vec2> pos = {{0, 0}, {10, 0}, {20, 0}};
  CommGraph g(pos, Vec2{30, 0}, 12.0);
  std::vector<bool> usable = {true, false, true};  // middle node dead
  const RouteTable tree = build_tree(g, pos, Vec2{30, 0}, usable);
  EXPECT_TRUE(tree.reachable(2));
  EXPECT_FALSE(tree.reachable(1));
  EXPECT_FALSE(tree.reachable(0));
  EXPECT_TRUE(tree.path_to_base(0).empty());
  EXPECT_FALSE(tree.hops_to_base(0).has_value());
}

TEST(Routing, TreeMatchesFloydWarshall) {
  Xoshiro256 rng(21);
  const auto pos = deploy_uniform(60, 60.0, rng);
  CommGraph g(pos, Vec2{30, 30}, 14.0);
  std::vector<bool> usable(60, true);
  // Kill a few nodes.
  for (std::size_t i = 0; i < 60; i += 7) usable[i] = false;

  const RouteTable tree = build_tree(g, pos, Vec2{30, 30}, usable);
  const auto ref = floyd_warshall(g, usable);
  const std::size_t bs = g.base_station_index();
  for (std::size_t v = 0; v < 60; ++v) {
    if (!usable[v]) {
      EXPECT_FALSE(tree.reachable(v));
      continue;
    }
    if (std::isinf(ref[bs][v])) {
      EXPECT_FALSE(tree.reachable(v));
    } else {
      ASSERT_TRUE(tree.reachable(v)) << "node " << v;
      EXPECT_NEAR(tree.distance_to_base(v), ref[bs][v], 1e-9);
    }
  }
}

TEST(Routing, PathDistancesTelescope) {
  Xoshiro256 rng(23);
  const auto pos = deploy_uniform(120, 80.0, rng);
  CommGraph g(pos, Vec2{40, 40}, 14.0);
  const RouteTable tree =
      build_tree(g, pos, Vec2{40, 40}, std::vector<bool>(120, true));
  for (std::size_t v = 0; v < 120; ++v) {
    if (!tree.reachable(v)) continue;
    const auto path = tree.path_to_base(v);
    double len = 0.0;
    std::vector<Vec2> all = pos;
    all.push_back({40, 40});
    for (std::size_t i = 1; i < path.size(); ++i) {
      len += distance(all[path[i - 1]], all[path[i]]);
    }
    EXPECT_NEAR(len, tree.distance_to_base(v), 1e-9);
  }
}

TEST(Routing, GeneralDijkstraSymmetry) {
  Xoshiro256 rng(25);
  const auto pos = deploy_uniform(50, 40.0, rng);
  CommGraph g(pos, Vec2{20, 20}, 12.0);
  const std::vector<bool> usable(50, true);
  const auto from3 = dijkstra(g, 3, usable);
  const auto from9 = dijkstra(g, 9, usable);
  EXPECT_NEAR(from3.dist[9], from9.dist[3], 1e-9);
}

TEST(Routing, UnusableSourceReachesNothing) {
  const std::vector<Vec2> pos = {{0, 0}, {5, 0}};
  CommGraph g(pos, Vec2{10, 0}, 12.0);
  std::vector<bool> usable = {false, true};
  const auto sp = dijkstra(g, 0, usable);
  EXPECT_TRUE(std::isinf(sp.dist[1]));
  EXPECT_TRUE(std::isinf(sp.dist[2]));
}

TEST(Routing, ParentPointersConsistentWithDistances) {
  Xoshiro256 rng(27);
  const auto pos = deploy_uniform(100, 70.0, rng);
  CommGraph g(pos, Vec2{35, 35}, 13.0);
  const RouteTable tree =
      build_tree(g, pos, Vec2{35, 35}, std::vector<bool>(100, true));
  std::vector<Vec2> all = pos;
  all.push_back({35, 35});
  for (std::size_t v = 0; v < 100; ++v) {
    if (!tree.reachable(v) || tree.next_hop(v) == kInvalidId) continue;
    const std::size_t p = tree.next_hop(v);
    EXPECT_NEAR(tree.distance_to_base(v),
                tree.distance_to_base(p) + distance(all[v], all[p]), 1e-9);
  }
}

}  // namespace
}  // namespace wrsn
