#include <gtest/gtest.h>

#include <sstream>

#include "core/error.hpp"
#include "core/table.hpp"

namespace wrsn {
namespace {

TEST(Table, RequiresHeaders) {
  EXPECT_THROW(Table(std::vector<std::string>{}), InvalidArgument);
}

TEST(Table, RowWidthMustMatch) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({std::string("only-one")}), InvalidArgument);
}

TEST(Table, CountsRowsAndCols) {
  Table t({"x", "y", "z"});
  EXPECT_EQ(t.num_cols(), 3u);
  EXPECT_EQ(t.num_rows(), 0u);
  t.add_row({std::string("a"), 1.5, 2LL});
  EXPECT_EQ(t.num_rows(), 1u);
}

TEST(Table, PrintAlignsColumns) {
  Table t({"name", "value"});
  t.add_row({std::string("short"), 1.0});
  t.add_row({std::string("much-longer-name"), 2.0});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  // Header + separator + 2 rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
  EXPECT_NE(out.find("much-longer-name"), std::string::npos);
  EXPECT_NE(out.find("name"), std::string::npos);
}

TEST(Table, PrecisionControlsDoubles) {
  Table t({"v"});
  t.set_precision(1);
  t.add_row({3.14159});
  std::ostringstream os;
  t.print(os);
  EXPECT_NE(os.str().find("3.1"), std::string::npos);
  EXPECT_EQ(os.str().find("3.14"), std::string::npos);
  EXPECT_THROW(t.set_precision(-1), InvalidArgument);
}

TEST(Table, CsvBasic) {
  Table t({"a", "b"});
  t.set_precision(2);
  t.add_row({std::string("x"), 1.5});
  std::ostringstream os;
  t.write_csv(os);
  EXPECT_EQ(os.str(), "a,b\nx,1.50\n");
}

TEST(Table, CsvEscapesCommasAndQuotes) {
  Table t({"text"});
  t.add_row({std::string("hello, \"world\"")});
  std::ostringstream os;
  t.write_csv(os);
  EXPECT_EQ(os.str(), "text\n\"hello, \"\"world\"\"\"\n");
}

TEST(Table, IntegerCellsPrintWithoutDecimals) {
  Table t({"n"});
  t.add_row({42LL});
  std::ostringstream os;
  t.write_csv(os);
  EXPECT_EQ(os.str(), "n\n42\n");
}

}  // namespace
}  // namespace wrsn
