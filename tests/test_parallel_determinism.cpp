// Parallel-determinism suite: the shard executor must leave every observable
// output BYTE-IDENTICAL to the serial run at any thread count — metrics
// report JSON, processed-event count, event trace (time, kind, subject,
// epoch, queue size) and the final battery vector — across both engines and
// with fault injection on. parallel_threshold is forced to 1 so every
// sharded phase actually dispatches (the instances here are far smaller than
// the production threshold).
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "core/parallel.hpp"
#include "core/rng.hpp"
#include "net/deployment.hpp"
#include "sched/kmeans.hpp"
#include "sched/tsp.hpp"
#include "sim/world.hpp"

namespace wrsn {
namespace {

SimConfig base_config(bool faults) {
  SimConfig cfg;
  cfg.num_sensors = 60;
  cfg.num_targets = 5;
  cfg.num_rvs = 2;
  cfg.field_side = meters(100.0);
  cfg.sim_duration = hours(6.0);
  cfg.target_motion = TargetMotion::kRandomWaypoint;
  cfg.target_period = minutes(30.0);
  cfg.target_speed = MeterPerSecond{1.0};
  cfg.activation = ActivationPolicy::kRoundRobin;
  cfg.scheduler = "combined";
  cfg.battery.capacity = Joule{150.0};
  cfg.radio.listen_duty_cycle = 0.2;
  cfg.parallel_threshold = 1;  // shard every bulk phase, however small
  if (faults) {
    cfg.fault.enabled = true;
    cfg.fault.request_loss_prob = 0.25;
    cfg.fault.request_delay_prob = 0.2;
    cfg.fault.request_delay_max = minutes(10.0);
    cfg.fault.request_retry_timeout = minutes(5.0);
    cfg.fault.rv_breakdown_at = hours(2.0);
    cfg.fault.rv_repair_duration = hours(1.0);
    cfg.fault.rv_mtbf_hours = 8.0;
    cfg.fault.sensor_fault_rate_per_day = 6.0;
    cfg.fault.sensor_fault_duration = minutes(40.0);
    cfg.fault.battery_noise_per_day = 0.05;
  }
  return cfg;
}

struct RunResult {
  std::string report_json;
  std::vector<World::TraceEvent> trace;
  std::vector<double> battery_levels;
  std::uint64_t events = 0;
};

RunResult run(const SimConfig& cfg, WorldEngine engine) {
  World w(cfg, engine);
  RunResult out;
  w.set_tracer([&out](const World::TraceEvent& ev) { out.trace.push_back(ev); });
  w.run_until(cfg.sim_duration);
  out.report_json = to_json(w.report());
  out.events = w.events_processed();
  out.battery_levels.reserve(w.network().num_sensors());
  for (const Sensor& s : w.network().sensors()) {
    out.battery_levels.push_back(s.battery.level().value());
  }
  return out;
}

void expect_same(const RunResult& a, const RunResult& b, const std::string& what) {
  EXPECT_EQ(a.report_json, b.report_json) << what;
  EXPECT_EQ(a.events, b.events) << what;
  ASSERT_EQ(a.trace.size(), b.trace.size()) << what;
  for (std::size_t i = 0; i < a.trace.size(); ++i) {
    ASSERT_TRUE(a.trace[i].time == b.trace[i].time &&
                a.trace[i].kind == b.trace[i].kind &&
                a.trace[i].subject == b.trace[i].subject &&
                a.trace[i].epoch == b.trace[i].epoch &&
                a.trace[i].queue_size == b.trace[i].queue_size)
        << what << " trace diverges at index " << i;
  }
  ASSERT_EQ(a.battery_levels.size(), b.battery_levels.size()) << what;
  for (std::size_t s = 0; s < a.battery_levels.size(); ++s) {
    ASSERT_EQ(a.battery_levels[s], b.battery_levels[s])
        << what << " battery diverges at sensor " << s;  // bit-exact
  }
}

TEST(ParallelDeterminism, ThreadCountNeverChangesOutput) {
  const WorldEngine engines[] = {WorldEngine::kIncremental,
                                 WorldEngine::kReference};
  for (const bool faults : {false, true}) {
    for (const WorldEngine engine : engines) {
      for (const std::uint64_t seed : {0u, 3u}) {
        SimConfig cfg = base_config(faults);
        cfg.seed = 0x9000 + seed * 7919;
        cfg.threads = 1;
        const RunResult serial = run(cfg, engine);
        EXPECT_GT(serial.events, 0u);
        for (const std::size_t threads : {2u, 8u}) {
          cfg.threads = threads;
          std::ostringstream what;
          what << "engine="
               << (engine == WorldEngine::kReference ? "ref" : "inc")
               << " faults=" << faults << " seed=" << seed
               << " threads=" << threads;
          expect_same(serial, run(cfg, engine), what.str());
          if (::testing::Test::HasFatalFailure()) return;
        }
      }
    }
  }
}

// The planner kernels pick up the executor via current_parallel(); with a
// pool installed and a threshold of 1, their sharded passes must reproduce
// the uninstalled (serial) results exactly.
TEST(ParallelDeterminism, KMeansMatchesSerialUnderInstalledPool) {
  Xoshiro256 deploy_rng(42);
  const auto pts = deploy_uniform(300, 120.0, deploy_rng);
  Xoshiro256 rng_serial(7), rng_parallel(7);
  const auto serial = kmeans(pts, 6, rng_serial);
  ParallelExec exec(4, /*threshold=*/1);
  const ParallelScope scope(&exec);
  const auto parallel = kmeans(pts, 6, rng_parallel);
  EXPECT_EQ(serial.assignment, parallel.assignment);
  ASSERT_EQ(serial.centroids.size(), parallel.centroids.size());
  for (std::size_t c = 0; c < serial.centroids.size(); ++c) {
    EXPECT_EQ(serial.centroids[c].x, parallel.centroids[c].x);
    EXPECT_EQ(serial.centroids[c].y, parallel.centroids[c].y);
  }
  EXPECT_EQ(serial.converged, parallel.converged);
}

TEST(ParallelDeterminism, TwoOptMatchesSerialUnderInstalledPool) {
  Xoshiro256 rng(1234);
  const auto pts = deploy_uniform(400, 150.0, rng);
  const Vec2 start{0.0, 0.0};
  std::vector<std::size_t> serial_order = nearest_neighbor_tour(start, pts);
  std::vector<std::size_t> parallel_order = serial_order;
  two_opt(start, pts, serial_order);
  {
    ParallelExec exec(4, /*threshold=*/1);
    const ParallelScope scope(&exec);
    two_opt(start, pts, parallel_order);
  }
  EXPECT_EQ(serial_order, parallel_order);
}

}  // namespace
}  // namespace wrsn
