#include <gtest/gtest.h>

#include <set>

#include "sim/world.hpp"

namespace wrsn {
namespace {

// A small, fast configuration (2 simulated days by default).
SimConfig small_config() {
  SimConfig cfg;
  cfg.num_sensors = 120;
  cfg.num_targets = 4;
  cfg.num_rvs = 2;
  cfg.field_side = meters(100.0);
  cfg.sim_duration = days(2.0);
  cfg.seed = 4242;
  return cfg;
}

TEST(World, InitialStateIsSane) {
  World w(small_config());
  EXPECT_DOUBLE_EQ(w.now().value(), 0.0);
  EXPECT_EQ(w.network().num_sensors(), 120u);
  EXPECT_EQ(w.rvs().size(), 2u);
  for (const Rv& rv : w.rvs()) {
    EXPECT_DOUBLE_EQ(rv.battery.fraction(), 1.0);
    EXPECT_EQ(rv.pos, w.network().base_station());
  }
  // Clusters exist for every target slot (possibly empty).
  EXPECT_EQ(w.clusters().num_clusters(), 4u);
}

TEST(World, RoundRobinYieldsOneMonitorPerCoveredCluster) {
  World w(small_config());
  const auto& cs = w.clusters();
  for (TargetId t = 0; t < cs.num_clusters(); ++t) {
    std::size_t monitoring = 0;
    for (SensorId s : cs.members[t]) {
      if (w.network().sensor(s).monitoring) ++monitoring;
    }
    if (!cs.members[t].empty()) {
      EXPECT_EQ(monitoring, 1u) << "target " << t;
    }
  }
}

TEST(World, FullTimeActivatesAllClusterMembers) {
  SimConfig cfg = small_config();
  cfg.activation = ActivationPolicy::kFullTime;
  World w(cfg);
  const auto& cs = w.clusters();
  for (TargetId t = 0; t < cs.num_clusters(); ++t) {
    for (SensorId s : cs.members[t]) {
      EXPECT_TRUE(w.network().sensor(s).monitoring);
    }
  }
}

TEST(World, TimeAdvancesMonotonically) {
  World w(small_config());
  w.run_until(hours(1.0));
  EXPECT_DOUBLE_EQ(w.now().value(), 3600.0);
  w.run_until(hours(5.0));
  EXPECT_DOUBLE_EQ(w.now().value(), 5.0 * 3600.0);
  // Re-running to a past time is a no-op.
  w.run_until(hours(2.0));
  EXPECT_DOUBLE_EQ(w.now().value(), 5.0 * 3600.0);
}

TEST(World, BatteriesDrainOverTime) {
  World w(small_config());
  w.run_until(hours(12.0));
  double total = 0.0;
  for (const Sensor& s : w.network().sensors()) total += s.battery.fraction();
  EXPECT_LT(total / 120.0, 1.0);  // strictly below full
  EXPECT_GT(total / 120.0, 0.5);  // but nowhere near empty after 12 h
}

TEST(World, MonitorsDrainFasterThanIdlers) {
  SimConfig cfg = small_config();
  World w(cfg);
  // Identify a monitor at t=0 and an unclustered sensor.
  SensorId monitor = kInvalidId, idler = kInvalidId;
  for (const Sensor& s : w.network().sensors()) {
    if (s.monitoring && monitor == kInvalidId) monitor = s.id;
    if (s.assigned_target == kInvalidId && idler == kInvalidId) idler = s.id;
  }
  ASSERT_NE(monitor, kInvalidId);
  ASSERT_NE(idler, kInvalidId);
  // Short window so re-clustering does not swap roles.
  w.run_until(minutes(5.0));
  EXPECT_LT(w.network().sensor(monitor).battery.fraction(),
            w.network().sensor(idler).battery.fraction());
}

TEST(World, DeterministicAcrossRuns) {
  SimConfig cfg = small_config();
  World a(cfg), b(cfg);
  const auto ra = a.run();
  const auto rb = b.run();
  EXPECT_DOUBLE_EQ(ra.rv_travel_energy.value(), rb.rv_travel_energy.value());
  EXPECT_DOUBLE_EQ(ra.energy_recharged.value(), rb.energy_recharged.value());
  EXPECT_DOUBLE_EQ(ra.coverage_ratio, rb.coverage_ratio);
  EXPECT_EQ(ra.recharge_requests, rb.recharge_requests);
  EXPECT_EQ(ra.sensors_recharged, rb.sensors_recharged);
}

TEST(World, DifferentSeedsDiffer) {
  SimConfig cfg = small_config();
  World a(cfg);
  cfg.seed = 999;
  World b(cfg);
  const auto ra = a.run();
  const auto rb = b.run();
  EXPECT_NE(ra.packets_delivered, rb.packets_delivered);
}

TEST(World, IncrementalEqualsOneShot) {
  SimConfig cfg = small_config();
  World a(cfg), b(cfg);
  a.run_until(hours(7.0));
  a.run_until(hours(20.0));
  a.run_until(cfg.sim_duration);
  b.run_until(cfg.sim_duration);
  EXPECT_DOUBLE_EQ(a.report().rv_travel_energy.value(),
                   b.report().rv_travel_energy.value());
  EXPECT_DOUBLE_EQ(a.report().coverage_ratio, b.report().coverage_ratio);
}

TEST(World, RequestsAppearOnceThresholdsCross) {
  SimConfig cfg = small_config();
  // Accelerate: high listening duty so thresholds cross within the horizon.
  cfg.radio.listen_duty_cycle = 0.5;
  cfg.sim_duration = days(2.0);
  World w(cfg);
  const auto r = w.run();
  EXPECT_GT(r.recharge_requests, 0u);
  EXPECT_GT(r.sensors_recharged, 0u);
  EXPECT_GT(r.energy_recharged.value(), 0.0);
  EXPECT_GT(r.rv_travel_distance.value(), 0.0);
}

TEST(World, EnergyConservationRvSide) {
  SimConfig cfg = small_config();
  cfg.radio.listen_duty_cycle = 0.5;
  World w(cfg);
  const auto r = w.run();
  // Every joule RVs moved or delivered came from full initial batteries plus
  // dock draws: travel + delivered <= initial + drawn (with slack for the
  // energy still in RV batteries).
  const double initial = cfg.rv.capacity.value() * static_cast<double>(cfg.num_rvs);
  double residual = 0.0;
  for (const Rv& rv : w.rvs()) residual += rv.battery.level().value();
  EXPECT_NEAR(r.rv_travel_energy.value() + r.energy_recharged.value() + residual,
              initial + r.rv_base_energy_drawn.value(), 1e-6);
}

TEST(World, EnergyConservationSensorSide) {
  // Sum of battery levels + total consumed == initial + recharged, where
  // consumed is inferred; we check the weaker invariant that levels never
  // exceed capacity and total recharged is consistent with demand served.
  SimConfig cfg = small_config();
  cfg.radio.listen_duty_cycle = 0.5;
  World w(cfg);
  const auto r = w.run();
  for (const Sensor& s : w.network().sensors()) {
    EXPECT_LE(s.battery.level().value(), s.battery.capacity().value() + 1e-9);
    EXPECT_GE(s.battery.level().value(), 0.0);
  }
  EXPECT_GE(r.energy_recharged.value(), 0.0);
}

TEST(World, PendingRequestsServedEventually) {
  SimConfig cfg = small_config();
  cfg.radio.listen_duty_cycle = 0.5;
  cfg.sim_duration = days(3.0);
  World w(cfg);
  const auto r = w.run();
  // With 2 RVs and light load, the backlog at the end must be small compared
  // with everything that was requested.
  EXPECT_LE(w.recharge_list().size() + 10, r.recharge_requests);
}

TEST(World, TimeSeriesRecording) {
  SimConfig cfg = small_config();
  cfg.metrics_sample_period = hours(1.0);
  World w(cfg);
  w.enable_time_series(true);
  w.run();
  // 2 days at 1-hour sampling: 47-48 points.
  EXPECT_GE(w.time_series().size(), 40u);
  double prev = -1.0;
  for (const auto& p : w.time_series()) {
    EXPECT_GT(p.t, prev);
    prev = p.t;
    EXPECT_LE(p.alive, cfg.num_sensors);
    EXPECT_LE(p.covered, p.coverable);
  }
}

TEST(World, SnapshotInvariants) {
  World w(small_config());
  w.run_until(hours(10.0));
  const StateSnapshot s = w.snapshot();
  EXPECT_LE(s.covered_targets, s.coverable_targets);
  EXPECT_LE(s.coverable_targets, 4u);
  EXPECT_LE(s.alive_sensors, s.total_sensors);
  EXPECT_EQ(s.total_sensors, 120u);
}

TEST(World, ZeroTargetsDegenerates) {
  SimConfig cfg = small_config();
  cfg.num_targets = 0;
  World w(cfg);
  const auto r = w.run();
  EXPECT_DOUBLE_EQ(r.coverage_ratio, 1.0);  // vacuous
  EXPECT_DOUBLE_EQ(r.missing_rate, 0.0);
}

TEST(World, SingleRvSingleSensor) {
  SimConfig cfg;
  cfg.num_sensors = 1;
  cfg.num_targets = 1;
  cfg.num_rvs = 1;
  cfg.field_side = meters(20.0);
  cfg.comm_range = meters(30.0);  // sensor always connected
  cfg.sim_duration = days(1.0);
  cfg.radio.listen_duty_cycle = 0.5;
  World w(cfg);
  EXPECT_NO_THROW(w.run());
}

TEST(World, SchedulerChoiceChangesBehaviour) {
  SimConfig cfg = small_config();
  cfg.radio.listen_duty_cycle = 0.5;
  cfg.sim_duration = days(3.0);
  cfg.scheduler = "greedy";
  World g(cfg);
  cfg.scheduler = "partition";
  World p(cfg);
  const auto rg = g.run();
  const auto rp = p.run();
  // Not asserting an ordering at this tiny scale, just that the scheduling
  // path is actually exercised differently.
  EXPECT_NE(rg.rv_travel_distance.value(), rp.rv_travel_distance.value());
}

}  // namespace
}  // namespace wrsn
