#include <gtest/gtest.h>

#include <set>

#include "core/rng.hpp"
#include "net/deployment.hpp"
#include "sched/planner.hpp"
#include "sched/profit.hpp"

namespace wrsn {
namespace {

RechargeItem item_at(Vec2 pos, double demand, bool critical = false,
                     SensorId sensor = 0) {
  RechargeItem it;
  it.pos = pos;
  it.demand = Joule{demand};
  it.critical = critical;
  it.sensors = {sensor};
  return it;
}

PlannerParams params() { return {JoulePerMeter{5.6}, Vec2{100, 100}}; }

TEST(Profit, RechargeProfitFormula) {
  const auto it = item_at({3, 4}, 1000.0);
  EXPECT_DOUBLE_EQ(recharge_profit({0, 0}, it, JoulePerMeter{5.6}).value(),
                   1000.0 - 5.6 * 5.0);
}

TEST(Profit, InsertionDetourZeroOnSegment) {
  EXPECT_NEAR(insertion_detour({0, 0}, {10, 0}, {5, 0}), 0.0, 1e-12);
  EXPECT_GT(insertion_detour({0, 0}, {10, 0}, {5, 5}), 0.0);
}

TEST(GreedyNext, PicksMaxProfit) {
  const std::vector<RechargeItem> items = {
      item_at({10, 100}, 500.0),   // close, low demand
      item_at({190, 100}, 2000.0), // far, high demand
  };
  RvPlanState rv{{100, 100}, Joule{50000.0}};
  std::vector<bool> taken(2, false);
  // profit0 = 500 - 5.6*90 = -4, profit1 = 2000 - 5.6*90 = 1496
  const auto got = greedy_next(rv, items, taken, params());
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, 1u);
}

TEST(GreedyNext, CriticalDominates) {
  const std::vector<RechargeItem> items = {
      item_at({101, 100}, 5000.0, false),
      item_at({190, 100}, 100.0, true),
  };
  RvPlanState rv{{100, 100}, Joule{50000.0}};
  std::vector<bool> taken(2, false);
  const auto got = greedy_next(rv, items, taken, params());
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, 1u);  // critical wins despite lower profit
}

TEST(GreedyNext, RespectsTakenMask) {
  const std::vector<RechargeItem> items = {
      item_at({101, 100}, 500.0),
      item_at({102, 100}, 400.0),
  };
  RvPlanState rv{{100, 100}, Joule{50000.0}};
  std::vector<bool> taken = {true, false};
  const auto got = greedy_next(rv, items, taken, params());
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, 1u);
}

TEST(GreedyNext, RespectsBudgetIncludingReturnLeg) {
  // Item 100 m out; serving needs 5.6*(100+100) + demand = 1120 + 500.
  const std::vector<RechargeItem> items = {item_at({200, 100}, 500.0)};
  std::vector<bool> taken(1, false);
  RvPlanState poor{{100, 100}, Joule{1600.0}};
  EXPECT_FALSE(greedy_next(poor, items, taken, params()).has_value());
  RvPlanState rich{{100, 100}, Joule{1700.0}};
  EXPECT_TRUE(greedy_next(rich, items, taken, params()).has_value());
}

TEST(GreedyNext, EmptyListReturnsNothing) {
  std::vector<bool> taken;
  RvPlanState rv{{0, 0}, Joule{1e6}};
  EXPECT_FALSE(greedy_next(rv, {}, taken, params()).has_value());
}

TEST(Insertion, BuildsDestPlusDetours) {
  // Destination far right; a cheap node right on the way gets inserted.
  const std::vector<RechargeItem> items = {
      item_at({150, 100}, 5000.0),  // dest (max profit)
      item_at({120, 100}, 800.0),   // on the path, zero detour
      item_at({100, 180}, 100.0),   // way off, low demand: profit negative
  };
  RvPlanState rv{{100, 100}, Joule{50000.0}};
  std::vector<bool> taken(3, false);
  const auto seq = insertion_sequence(rv, items, taken, params());
  ASSERT_EQ(seq.size(), 2u);
  EXPECT_EQ(seq[0], 1u);  // inserted before dest
  EXPECT_EQ(seq[1], 0u);  // dest stays last
  EXPECT_TRUE(taken[0]);
  EXPECT_TRUE(taken[1]);
  EXPECT_FALSE(taken[2]);
}

TEST(Insertion, NegativeProfitNotInserted) {
  const std::vector<RechargeItem> items = {
      item_at({150, 100}, 5000.0),
      item_at({100, 30}, 10.0),  // detour ~ 2*85 m -> cost ~950 J >> 10 J
  };
  RvPlanState rv{{100, 100}, Joule{50000.0}};
  std::vector<bool> taken(2, false);
  const auto seq = insertion_sequence(rv, items, taken, params());
  EXPECT_EQ(seq, (std::vector<std::size_t>{0}));
}

TEST(Insertion, EmptyWhenNothingAffordable) {
  const std::vector<RechargeItem> items = {item_at({200, 100}, 5000.0)};
  RvPlanState rv{{100, 100}, Joule{100.0}};
  std::vector<bool> taken(1, false);
  EXPECT_TRUE(insertion_sequence(rv, items, taken, params()).empty());
  EXPECT_FALSE(taken[0]);
}

TEST(Insertion, BudgetCapsSequence) {
  // Many identical items nearby; budget only fits a few.
  std::vector<RechargeItem> items;
  for (int i = 0; i < 10; ++i) {
    items.push_back(item_at({101.0 + i, 100.0}, 1000.0, false, i));
  }
  RvPlanState rv{{100, 100}, Joule{3300.0}};  // fits ~3 demands + travel
  std::vector<bool> taken(items.size(), false);
  const auto seq = insertion_sequence(rv, items, taken, params());
  EXPECT_GE(seq.size(), 1u);
  EXPECT_LE(seq.size(), 3u);
  // Verify the budget arithmetic: demands + travel + return <= budget.
  double travel = sequence_length(rv.pos, items, seq, params().base);
  double demand = 0.0;
  for (std::size_t i : seq) demand += items[i].demand.value();
  EXPECT_LE(demand + 5.6 * travel, rv.available.value() + 1e-6);
}

TEST(Insertion, ProfitNeverNegativePerStep) {
  // Total profit of an insertion sequence >= profit of serving only dest
  // (every insertion had positive marginal profit).
  Xoshiro256 rng(42);
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<RechargeItem> items;
    const std::size_t n = 3 + rng.uniform_int(8);
    for (std::size_t i = 0; i < n; ++i) {
      items.push_back(item_at({rng.uniform(0.0, 200.0), rng.uniform(0.0, 200.0)},
                              rng.uniform(100.0, 4000.0), false, i));
    }
    RvPlanState rv{{100, 100}, Joule{50000.0}};
    std::vector<bool> taken(n, false);
    const auto seq = insertion_sequence(rv, items, taken, params());
    if (seq.empty()) continue;
    const Joule seq_profit = sequence_profit(rv.pos, items, seq, JoulePerMeter{5.6});
    std::vector<bool> t2(n, false);
    const auto dest = greedy_next(rv, items, t2, params());
    ASSERT_TRUE(dest.has_value());
    const Joule dest_profit = recharge_profit(rv.pos, items[*dest], JoulePerMeter{5.6});
    EXPECT_GE(seq_profit.value(), dest_profit.value() - 1e-6) << "trial " << trial;
  }
}

TEST(Partition, GroupsCoverAllItems) {
  Xoshiro256 rng(7);
  std::vector<RechargeItem> items;
  for (int i = 0; i < 30; ++i) {
    items.push_back(item_at({rng.uniform(0.0, 200.0), rng.uniform(0.0, 200.0)},
                            100.0, false, i));
  }
  const auto groups = partition_items(items, 3, rng);
  ASSERT_EQ(groups.size(), 3u);
  std::set<std::size_t> seen;
  for (const auto& g : groups) {
    for (std::size_t i : g) EXPECT_TRUE(seen.insert(i).second);
  }
  EXPECT_EQ(seen.size(), items.size());
}

TEST(Partition, FewerItemsThanGroups) {
  Xoshiro256 rng(8);
  const std::vector<RechargeItem> items = {item_at({5, 5}, 100.0)};
  const auto groups = partition_items(items, 3, rng);
  ASSERT_EQ(groups.size(), 3u);
  std::size_t total = 0;
  for (const auto& g : groups) total += g.size();
  EXPECT_EQ(total, 1u);
}

TEST(Partition, EmptyItems) {
  Xoshiro256 rng(9);
  const auto groups = partition_items({}, 3, rng);
  EXPECT_EQ(groups.size(), 3u);
  for (const auto& g : groups) EXPECT_TRUE(g.empty());
}

TEST(MatchGroups, OneToOneAndDistinct) {
  const std::vector<Vec2> centroids = {{0, 0}, {100, 100}};
  const std::vector<Vec2> rvs = {{90, 90}, {10, 10}, {50, 50}};
  const auto match = match_groups_to_rvs(centroids, rvs);
  ASSERT_EQ(match.size(), 2u);
  EXPECT_EQ(match[0], 1u);  // group at origin -> RV near origin
  EXPECT_EQ(match[1], 0u);
  EXPECT_NE(match[0], match[1]);
}

TEST(MatchGroups, MoreGroupsThanRvsRejected) {
  EXPECT_THROW(match_groups_to_rvs({{0, 0}, {1, 1}}, {{0, 0}}), InvalidArgument);
}

TEST(Combined, SequentialClaims) {
  std::vector<RechargeItem> items;
  for (int i = 0; i < 6; ++i) {
    items.push_back(item_at({10.0 + i * 30.0, 100.0}, 2000.0, false, i));
  }
  const std::vector<RvPlanState> rvs = {
      {{100, 100}, Joule{8000.0}},
      {{100, 100}, Joule{8000.0}},
  };
  const auto plans = combined_plan(rvs, items, params());
  ASSERT_EQ(plans.size(), 2u);
  std::set<std::size_t> seen;
  for (const auto& plan : plans) {
    for (std::size_t i : plan) EXPECT_TRUE(seen.insert(i).second);
  }
  EXPECT_FALSE(plans[0].empty());
}

TEST(SequenceHelpers, LengthAndProfit) {
  const std::vector<RechargeItem> items = {item_at({3, 4}, 100.0),
                                           item_at({3, 8}, 50.0)};
  const std::vector<std::size_t> seq = {0, 1};
  EXPECT_DOUBLE_EQ(sequence_length({0, 0}, items, seq), 9.0);
  EXPECT_DOUBLE_EQ(sequence_length({0, 0}, items, seq, Vec2{3, 0}), 17.0);
  EXPECT_DOUBLE_EQ(sequence_profit({0, 0}, items, seq, JoulePerMeter{2.0}).value(),
                   150.0 - 18.0);
}

}  // namespace
}  // namespace wrsn
