#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "core/rng.hpp"
#include "net/deployment.hpp"
#include "sched/tsp.hpp"

namespace wrsn {
namespace {

double brute_force_best(Vec2 start, const std::vector<Vec2>& pts) {
  std::vector<std::size_t> perm(pts.size());
  std::iota(perm.begin(), perm.end(), 0);
  double best = std::numeric_limits<double>::infinity();
  do {
    best = std::min(best, open_tour_length(start, pts, perm));
  } while (std::next_permutation(perm.begin(), perm.end()));
  return best;
}

TEST(Tsp, NearestNeighborVisitsAll) {
  const std::vector<Vec2> pts = {{5, 0}, {1, 0}, {3, 0}};
  const auto order = nearest_neighbor_tour({0, 0}, pts);
  EXPECT_EQ(order, (std::vector<std::size_t>{1, 2, 0}));
}

TEST(Tsp, NearestNeighborEmptyAndSingle) {
  EXPECT_TRUE(nearest_neighbor_tour({0, 0}, {}).empty());
  EXPECT_EQ(nearest_neighbor_tour({0, 0}, {{3, 4}}),
            (std::vector<std::size_t>{0}));
}

TEST(Tsp, OpenTourLength) {
  const std::vector<Vec2> pts = {{3, 4}, {3, 8}};
  EXPECT_DOUBLE_EQ(open_tour_length({0, 0}, pts, {0, 1}), 5.0 + 4.0);
  EXPECT_DOUBLE_EQ(open_tour_length({0, 0}, pts, {}), 0.0);
}

TEST(Tsp, NearestNeighborIsPermutation) {
  Xoshiro256 rng(3);
  const auto pts = deploy_uniform(50, 30.0, rng);
  const auto order = nearest_neighbor_tour({15, 15}, pts);
  std::vector<std::size_t> sorted = order;
  std::sort(sorted.begin(), sorted.end());
  for (std::size_t i = 0; i < 50; ++i) EXPECT_EQ(sorted[i], i);
}

TEST(Tsp, TwoOptNeverWorsens) {
  Xoshiro256 rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    const auto pts = deploy_uniform(15, 20.0, rng);
    const Vec2 start{10, 10};
    auto order = nearest_neighbor_tour(start, pts);
    const double before = open_tour_length(start, pts, order);
    two_opt(start, pts, order);
    const double after = open_tour_length(start, pts, order);
    EXPECT_LE(after, before + 1e-9) << "trial " << trial;
    // Still a permutation.
    std::vector<std::size_t> sorted = order;
    std::sort(sorted.begin(), sorted.end());
    for (std::size_t i = 0; i < pts.size(); ++i) EXPECT_EQ(sorted[i], i);
  }
}

TEST(Tsp, TwoOptFixesObviousCrossing) {
  // start at origin; NN from origin picks 0,1,2,3 badly crossing; construct a
  // deliberate crossing order and let 2-opt untangle it.
  const std::vector<Vec2> pts = {{0, 10}, {10, 0}, {10, 10}, {0, 20}};
  std::vector<std::size_t> order = {1, 0, 2, 3};  // zig-zag
  two_opt({0, 0}, pts, order);
  const double len = open_tour_length({0, 0}, pts, order);
  EXPECT_LE(len, open_tour_length({0, 0}, pts, {1, 0, 2, 3}) - 1e-9);
}

// Property: NN + 2-opt is within 25% of the brute-force optimum on small
// random instances (cluster-scale n).
class TourQuality : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TourQuality, NearOptimalAtClusterScale) {
  Xoshiro256 rng(GetParam());
  const std::size_t n = 4 + rng.uniform_int(4);  // 4..7 points
  const auto pts = deploy_uniform(n, 16.0, rng);  // cluster diameter ~ 2*d_s
  const Vec2 start{rng.uniform(0.0, 16.0), rng.uniform(0.0, 16.0)};
  auto order = nearest_neighbor_tour(start, pts);
  two_opt(start, pts, order);
  const double len = open_tour_length(start, pts, order);
  const double best = brute_force_best(start, pts);
  EXPECT_LE(len, best * 1.25 + 1e-9);
  EXPECT_GE(len, best - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, TourQuality,
                         ::testing::Range<std::uint64_t>(100, 125));

TEST(Tsp, TourLengthIndexValidation) {
  const std::vector<Vec2> pts = {{1, 1}};
  EXPECT_THROW((void)open_tour_length({0, 0}, pts, {5}), InvalidArgument);
}

}  // namespace
}  // namespace wrsn
