// Span-tracing suite: the wrsn.spans v2 contract (frozen meta record, one
// terminal state per request lifecycle, tour/leg nesting), fault-injection
// annotations, the Chrome trace exporter, the flight recorder's post-mortem
// dump, and the Heisenberg rule — attaching spans, a Chrome sink, and a
// flight recorder must leave the simulated physics byte-identical.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "core/error.hpp"
#include "core/json.hpp"
#include "obs/flight.hpp"
#include "obs/spans.hpp"
#include "sim/world.hpp"

namespace wrsn {
namespace {

// A parsed wrsn.spans JSONL record, extracted textually (the file format is
// pinned elsewhere in this suite; the emitter writes one flat object per
// line with the frozen field order).
struct ParsedSpan {
  std::uint64_t id = 0, parent = 0, root = 0, subject = 0;
  std::string track, name, outcome;
  double t0 = 0.0, t1 = 0.0, value = 0.0;
  bool mark = false;
};

double number_field(const std::string& line, const std::string& key) {
  const auto pos = line.find('"' + key + "\":");
  EXPECT_NE(pos, std::string::npos) << "missing field " << key << ": " << line;
  if (pos == std::string::npos) return 0.0;
  return std::strtod(line.c_str() + pos + key.size() + 3, nullptr);
}

std::string string_field(const std::string& line, const std::string& key) {
  const auto pos = line.find('"' + key + "\":\"");
  EXPECT_NE(pos, std::string::npos) << "missing field " << key << ": " << line;
  if (pos == std::string::npos) return {};
  const auto begin = pos + key.size() + 4;
  return line.substr(begin, line.find('"', begin) - begin);
}

std::vector<ParsedSpan> parse_spans(const std::string& jsonl) {
  std::vector<ParsedSpan> out;
  std::istringstream in(jsonl);
  std::string line;
  while (std::getline(in, line)) {
    if (line.find("\"record\":\"span\"") == std::string::npos) continue;
    ParsedSpan s;
    s.id = static_cast<std::uint64_t>(number_field(line, "id"));
    s.parent = static_cast<std::uint64_t>(number_field(line, "parent"));
    s.root = static_cast<std::uint64_t>(number_field(line, "root"));
    s.subject = static_cast<std::uint64_t>(number_field(line, "subject"));
    s.track = string_field(line, "track");
    s.name = string_field(line, "name");
    s.outcome = string_field(line, "outcome");
    s.t0 = number_field(line, "t0_s");
    s.t1 = number_field(line, "t1_s");
    s.value = number_field(line, "value");
    s.mark = line.find("\"mark\":true") != std::string::npos;
    out.push_back(std::move(s));
  }
  return out;
}

// Battery-stressed fault scenario: enough recharge traffic in two simulated
// days to exercise every lifecycle stage, plus uplink loss and a pinned
// RV-0 breakdown so degraded-mode annotations appear deterministically.
SimConfig span_config() {
  SimConfig cfg;
  cfg.num_sensors = 40;
  cfg.num_targets = 5;
  cfg.num_rvs = 2;
  cfg.field_side = meters(100.0);
  cfg.sim_duration = days(2.0);
  cfg.battery.capacity = Joule{200.0};
  cfg.seed = 60601;
  cfg.fault.enabled = true;
  cfg.fault.request_loss_prob = 0.3;
  cfg.fault.rv_breakdown_at = hours(6.0);
  cfg.fault.rv_repair_duration = hours(2.0);
  return cfg;
}

struct SpanRun {
  MetricsReport report;
  std::vector<ParsedSpan> spans;
  std::string jsonl;
};

SpanRun run_with_spans(const SimConfig& cfg) {
  std::ostringstream out;
  obs::JsonlSpanSink sink(out);
  obs::SpanLog log(&sink);
  World world(cfg);
  world.set_span_log(&log);
  SpanRun run;
  run.report = world.run();
  log.finish(world.now().value());
  run.jsonl = out.str();
  run.spans = parse_spans(run.jsonl);
  return run;
}

TEST(SpanLog, MetaRecordIsFrozen) {
  // The v2 schema contract: field list and order are load-bearing for
  // downstream parsers, so the exact meta line is pinned.
  std::ostringstream out;
  obs::JsonlSpanSink sink(out);
  EXPECT_EQ(out.str(),
            "{\"record\":\"meta\",\"schema\":\"wrsn.spans\",\"version\":2,"
            "\"fields\":[\"id\",\"parent\",\"root\",\"track\",\"subject\","
            "\"name\",\"t0_s\",\"t1_s\",\"outcome\",\"value\",\"mark\"]}\n");
}

TEST(SpanLog, ChildrenInheritRootAndMarksAttach) {
  std::ostringstream out;
  obs::JsonlSpanSink sink(out);
  obs::SpanLog log(&sink);
  const auto tour = log.begin("rv", 0, "tour", 10.0);
  const auto leg = log.begin("rv", 0, "travel", 10.0, tour);
  log.mark(leg, "note", 12.0);
  log.end(leg, 15.0, "arrived");
  log.end(tour, 20.0, "completed");
  log.finish(20.0);
  const auto spans = parse_spans(out.str());
  ASSERT_EQ(spans.size(), 3u);  // mark, leg, tour (in emit order)
  for (const ParsedSpan& s : spans) EXPECT_EQ(s.root, tour);
  EXPECT_TRUE(spans[0].mark);
  EXPECT_EQ(spans[0].parent, leg);
  EXPECT_EQ(spans[0].track, "rv");  // inherited from the open parent
  EXPECT_EQ(log.open_spans(), 0u);
}

TEST(SpanLog, FinishClosesOpenSpansDeepestFirst) {
  std::ostringstream out;
  obs::JsonlSpanSink sink(out);
  obs::SpanLog log(&sink);
  const auto root = log.begin("request", 7, "request", 0.0);
  log.begin("request", 7, "phase", 1.0, root);
  log.finish(5.0, "sim-end");
  const auto spans = parse_spans(out.str());
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].name, "phase");  // deepest (latest begun) closes first
  EXPECT_EQ(spans[1].name, "request");
  for (const ParsedSpan& s : spans) {
    EXPECT_EQ(s.outcome, "sim-end");
    EXPECT_DOUBLE_EQ(s.t1, 5.0);
  }
}

TEST(Spans, EveryRequestReachesExactlyOneTerminalState) {
  const SpanRun run = run_with_spans(span_config());
  const std::set<std::string> terminal = {"served", "expired", "died-waiting",
                                          "unserved"};
  std::size_t roots = 0;
  for (const ParsedSpan& s : run.spans) {
    if (s.track != "request" || s.mark || s.id != s.root) continue;
    ++roots;
    EXPECT_TRUE(terminal.count(s.outcome))
        << "request span ended with non-terminal outcome '" << s.outcome << "'";
    EXPECT_GE(s.t1, s.t0);
  }
  // Span records are emitted exactly once, at end time — so one root record
  // per request means one terminal state per request.
  EXPECT_EQ(roots, run.report.recharge_requests);
  EXPECT_GT(roots, 50u) << "scenario should generate substantial traffic";
}

TEST(Spans, TourSpansNestTheirLegs) {
  const SpanRun run = run_with_spans(span_config());
  std::map<std::uint64_t, const ParsedSpan*> by_id;
  for (const ParsedSpan& s : run.spans) by_id[s.id] = &s;
  std::size_t legs = 0;
  for (const ParsedSpan& s : run.spans) {
    if (s.track != "rv" || s.mark || s.parent == 0) continue;
    ++legs;
    const auto parent = by_id.find(s.parent);
    ASSERT_NE(parent, by_id.end()) << "leg '" << s.name << "' has no parent";
    EXPECT_EQ(parent->second->name, "tour");
    EXPECT_EQ(parent->second->subject, s.subject);
    // Time containment: a leg lives inside its tour.
    EXPECT_GE(s.t0, parent->second->t0);
    EXPECT_LE(s.t1, parent->second->t1);
  }
  EXPECT_GT(legs, 10u);
  EXPECT_GT(run.report.rv_tours, 0u);
}

TEST(Spans, FaultInjectionShowsUpAsAnnotations) {
  const SpanRun run = run_with_spans(span_config());
  std::size_t drops = 0, breakdowns = 0;
  for (const ParsedSpan& s : run.spans) {
    if (s.mark && s.name == "uplink-drop") ++drops;
    if (!s.mark && s.name == "breakdown") ++breakdowns;
  }
  EXPECT_EQ(drops, run.report.requests_lost);
  EXPECT_GT(drops, 0u);
  EXPECT_EQ(breakdowns, run.report.rv_breakdowns);
  EXPECT_EQ(breakdowns, 1u);  // the pinned RV-0 breakdown
}

TEST(Spans, HeisenbergRuleReportByteIdentical) {
  // Physics must be byte-identical with the full instrument stack attached:
  // JSONL spans + Chrome exporter + flight recorder.
  World bare(span_config());
  const std::string bare_json = to_json(bare.run());

  std::ostringstream jsonl, chrome;
  obs::JsonlSpanSink jsink(jsonl);
  obs::ChromeTraceSink csink(chrome);
  obs::SpanLog log(&jsink, &csink);
  obs::FlightRecorder flight(64);
  World observed(span_config());
  observed.set_span_log(&log);
  observed.set_flight_recorder(&flight);
  const std::string observed_json = to_json(observed.run());
  log.finish(observed.now().value());

  EXPECT_EQ(bare_json, observed_json);
  EXPECT_GT(log.spans_emitted(), 100u);
  EXPECT_GT(flight.events_seen(), 100u);
}

TEST(Spans, LatencyBreakdownDecomposesEndToEndLatency) {
  World world(span_config());
  const MetricsReport r = world.run();
  ASSERT_GT(r.sensors_recharged, 0u);
  // wait + travel + service must reconstruct the end-to-end request latency
  // (the means are over the same sample set, so they sum exactly).
  EXPECT_NEAR(r.avg_request_wait.value() + r.avg_request_travel.value() +
                  r.avg_request_service.value(),
              r.avg_request_latency.value(), 1e-6);
  EXPECT_GT(r.avg_request_service.value(), 0.0);
  EXPECT_GE(r.p99_request_wait.value(), r.p50_request_wait.value());
  // The JSON report carries the new fields.
  const std::string json = to_json(r);
  EXPECT_NE(json.find("\"avg_request_wait_s\":"), std::string::npos);
  EXPECT_NE(json.find("\"p99_request_service_s\":"), std::string::npos);
}

TEST(ChromeTrace, ExportIsValidJsonWithBothTrackKinds) {
  std::ostringstream out;
  {
    obs::ChromeTraceSink sink(out);
    obs::SpanLog log(&sink);
    World world(span_config());
    world.set_span_log(&log);
    world.run();
    log.finish(world.now().value());
  }
  const std::string doc = out.str();
  std::string error;
  EXPECT_TRUE(json_validate(doc, &error)) << error;
  EXPECT_NE(doc.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(doc.find("\"ph\":\"X\""), std::string::npos);  // RV track spans
  EXPECT_NE(doc.find("\"ph\":\"b\""), std::string::npos);  // async requests
  EXPECT_NE(doc.find("\"name\":\"RV 0\""), std::string::npos);
}

TEST(FlightRecorder, RingKeepsLastNOldestFirst) {
  obs::FlightRecorder flight(4);
  for (int i = 0; i < 10; ++i) {
    obs::TraceRecord rec;
    rec.t = static_cast<double>(i);
    rec.kind = "tick";
    flight.record(rec);
  }
  EXPECT_EQ(flight.events_seen(), 10u);
  std::ostringstream out;
  flight.dump(out, "test");
  const std::string dump = out.str();
  EXPECT_NE(dump.find("last 4 of 10 events"), std::string::npos);
  EXPECT_EQ(dump.find("t=5s"), std::string::npos);  // evicted
  // Oldest surviving record first.
  EXPECT_LT(dump.find("t=6s"), dump.find("t=9s"));
}

TEST(FlightRecorder, DumpsOnAssertFailureViaHook) {
  obs::FlightRecorder flight(8);
  flight.set_label("hook-test");
  flight.set_context_provider([] { return std::string("{\"ctx\":1}"); });
  obs::TraceRecord rec;
  rec.t = 42.0;
  rec.kind = "last-event";
  flight.record(rec);

  // Route the dump to a file we can read back, then trip a WRSN_ASSERT-style
  // failure through the core hook path.
  const std::string path = ::testing::TempDir() + "flight_hook_dump.txt";
  std::remove(path.c_str());
  obs::FlightRecorder::set_dump_path(path);
  obs::FlightRecorder::arm_failure_hook();
  EXPECT_THROW(
      detail::throw_logic_error("forced", __FILE__, __LINE__, "test assert"),
      LogicError);
  set_failure_hook(nullptr);  // do not leak the hook into other tests
  obs::FlightRecorder::set_dump_path("");

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string dump = buffer.str();
  EXPECT_NE(dump.find("invariant failure imminent"), std::string::npos);
  EXPECT_NE(dump.find("test assert"), std::string::npos);
  EXPECT_NE(dump.find("[hook-test]"), std::string::npos);
  EXPECT_NE(dump.find("reason: assert-failure"), std::string::npos);
  EXPECT_NE(dump.find("t=42s last-event"), std::string::npos);
  EXPECT_NE(dump.find("{\"ctx\":1}"), std::string::npos);
}

TEST(FlightRecorder, DumpAllWithoutRecordersIsANoOp) {
  // Must be safe from CLI catch blocks even when nothing was attached.
  obs::FlightRecorder::dump_all("graceful-failure");
}

}  // namespace
}  // namespace wrsn
