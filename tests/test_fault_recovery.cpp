// Recovery-path tests: RV breakdown/repair lifecycle, failover of stranded
// service queues, the retry+failover margin on the checked-in demo scenario,
// stale-epoch edge cases after forced replans, and the travel-reserve
// invariant under randomized fault plans.
#include <gtest/gtest.h>

#include <string>

#include "core/config_io.hpp"
#include "geom/vec2.hpp"
#include "obs/telemetry.hpp"
#include "sim/world.hpp"

namespace wrsn {
namespace {

SimConfig demo_config() {
  return load_config(std::string(WRSN_SOURCE_DIR) + "/configs/faulty_field.cfg",
                     SimConfig::paper_defaults());
}

TEST(FaultRecovery, BreakdownRepairLifecycle) {
  SimConfig cfg;
  cfg.num_sensors = 40;
  cfg.num_targets = 4;
  cfg.num_rvs = 2;
  cfg.field_side = meters(100.0);
  cfg.sim_duration = hours(12.0);
  cfg.battery.capacity = Joule{300.0};
  cfg.radio.listen_duty_cycle = 0.2;
  cfg.fault.enabled = true;
  cfg.fault.rv_breakdown_at = hours(2.0);
  cfg.fault.rv_repair_duration = hours(3.0);

  World w(cfg);
  // Mid-window: RV 0 is out of service, never dispatched.
  w.run_until(hours(3.0));
  EXPECT_EQ(w.rvs()[0].state, Rv::State::kBrokenDown);

  const MetricsReport r = w.run();
  EXPECT_EQ(r.rv_breakdowns, 1u);
  EXPECT_EQ(r.rv_repairs, 1u);
  EXPECT_DOUBLE_EQ(r.rv_downtime.value(), hours(3.0).value());
  // Repaired vehicle is back in service (towed to base, refilled).
  EXPECT_NE(w.rvs()[0].state, Rv::State::kBrokenDown);
}

TEST(FaultRecovery, DemoScenarioFailoverReinjectsStrandedQueue) {
  const SimConfig cfg = demo_config();
  ASSERT_TRUE(cfg.fault.enabled);
  ASSERT_TRUE(cfg.fault.rv_failover);

  World w(cfg);
  const MetricsReport r = w.run();
  EXPECT_EQ(r.rv_breakdowns, 1u);
  // The breakdown catches a busy queue: its requests are re-injected and
  // later served by the surviving vehicle, with recovery latency tracked.
  EXPECT_GT(r.failover_reinjected, 0u);
  EXPECT_GT(r.avg_failover_recovery.value(), 0.0);
}

// The headline robustness claim: on the demo scenario, retry+failover beats
// the no-retry/no-failover control on both dead sensors and coverage.
TEST(FaultRecovery, RecoveryBeatsControlOnDemoScenario) {
  const SimConfig recovery = demo_config();
  SimConfig control = recovery;
  control.fault.request_max_retries = 0;
  control.fault.rv_failover = false;

  World wr(recovery), wc(control);
  const MetricsReport rr = wr.run();
  const MetricsReport rc = wc.run();

  EXPECT_GT(rr.requests_retried, 0u);
  EXPECT_EQ(rc.requests_retried, 0u);
  EXPECT_GT(rc.requests_expired, 0u);  // control drops requests on first loss
  EXPECT_LT(rr.sensor_deaths, rc.sensor_deaths);
  EXPECT_GT(rr.coverage_ratio, rc.coverage_ratio);
}

TEST(FaultRecovery, WithoutFailoverBrokenRvKeepsItsQueue) {
  SimConfig cfg = demo_config();
  cfg.fault.rv_failover = false;
  World w(cfg);
  const MetricsReport r = w.run();
  EXPECT_EQ(r.rv_breakdowns, 1u);
  EXPECT_EQ(r.failover_reinjected, 0u);
  EXPECT_DOUBLE_EQ(r.avg_failover_recovery.value(), 0.0);
}

TEST(FaultRecovery, FaultTelemetryCountersMatchReport) {
  SimConfig cfg = demo_config();
  obs::TelemetryRegistry registry;
  World w(cfg);
  w.set_telemetry(&registry);
  const MetricsReport r = w.run();
  EXPECT_EQ(registry.counter("fault/requests-lost").value(), r.requests_lost);
  EXPECT_EQ(registry.counter("fault/requests-retried").value(),
            r.requests_retried);
  EXPECT_EQ(registry.counter("fault/requests-expired").value(),
            r.requests_expired);
  EXPECT_EQ(registry.counter("fault/rv-breakdowns").value(), r.rv_breakdowns);
  EXPECT_EQ(registry.counter("fault/failover-reinjected").value(),
            r.failover_reinjected);
  EXPECT_EQ(registry.counter("fault/sensor-hw-faults").value(),
            r.sensor_hw_faults);
}

// Stale events staged against the new fault event kinds must be discarded by
// the epoch guards, not handled: a forced replan (breakdown) bumps the RV
// epoch, and delivery/expiry bumps the uplink epoch.
TEST(FaultRecovery, StaleFaultEventsAreDiscarded) {
  SimConfig cfg;
  cfg.num_sensors = 30;
  cfg.num_targets = 3;
  cfg.num_rvs = 2;
  cfg.field_side = meters(80.0);
  cfg.sim_duration = hours(2.0);
  cfg.fault.enabled = true;
  cfg.fault.request_loss_prob = 0.2;

  obs::TelemetryRegistry registry;
  World w(cfg);
  w.set_telemetry(&registry);
  w.run_until(hours(1.0));
  const std::uint64_t before = registry.counter("events/stale-discarded").value();

  const double t = w.now().value() + 60.0;
  w.push_event_for_test(t, EventKind::kRvRepaired, 0, 999);
  w.push_event_for_test(t, EventKind::kRvArrival, 1, 999);
  w.push_event_for_test(t, EventKind::kRequestUplink, 0, 999);
  w.run_until(hours(2.0));

  EXPECT_EQ(registry.counter("events/stale-discarded").value(), before + 3);
  // The stale repair event must not have revived a healthy vehicle into a
  // broken state or vice versa: both RVs are in a normal operating state.
  for (const Rv& rv : w.rvs()) {
    EXPECT_NE(rv.state, Rv::State::kBrokenDown);
  }
}

// A breakdown mid-leg leaves an in-flight arrival event behind; the epoch
// bump makes it stale. The run must complete with the vehicle towed back
// and no double-handling (ctest runs this under debug asserts).
TEST(FaultRecovery, BreakdownMidLegDiscardsInFlightArrival) {
  SimConfig cfg = demo_config();
  cfg.sim_duration = hours(48.0);  // past the 36 h breakdown + repair start
  obs::TelemetryRegistry registry;
  World w(cfg);
  w.set_telemetry(&registry);
  w.run();
  EXPECT_EQ(registry.counter("events/popped/rv-breakdown").value(), 1u);
  EXPECT_EQ(registry.counter("events/popped/rv-repaired").value(), 1u);
}

// Travel-reserve invariant, as a randomized property: whenever an RV arrival
// fires — including under request loss, breakdowns and hardware faults — the
// vehicle can still afford the trip home plus the configured reserve.
TEST(FaultRecovery, TravelReserveInvariantHoldsUnderRandomFaults) {
  for (std::uint64_t trial = 0; trial < 8; ++trial) {
    SimConfig cfg;
    cfg.num_sensors = 30 + (trial % 3) * 10;
    cfg.num_targets = 3;
    cfg.num_rvs = 2;
    cfg.field_side = meters(90.0);
    cfg.sim_duration = hours(8.0);
    cfg.seed = 0xbeef + trial * 131;
    cfg.battery.capacity = Joule{150.0 + 25.0 * static_cast<double>(trial)};
    cfg.radio.listen_duty_cycle = 0.2;
    cfg.fault.enabled = true;
    cfg.fault.request_loss_prob = 0.1 * static_cast<double>(trial % 4);
    cfg.fault.request_retry_timeout = minutes(5.0);
    cfg.fault.rv_mtbf_hours = trial % 2 == 0 ? 6.0 : 0.0;
    cfg.fault.rv_repair_duration = hours(1.0);
    cfg.fault.sensor_fault_rate_per_day = trial % 3 == 0 ? 6.0 : 0.0;
    cfg.fault.sensor_fault_duration = minutes(30.0);

    World w(cfg);
    const Vec2 base = w.network().base_station();
    const Joule reserve = cfg.rv.capacity * cfg.rv.reserve_fraction;
    std::size_t arrivals = 0;
    w.set_tracer([&](const World::TraceEvent& ev) {
      if (ev.kind != EventKind::kRvArrival) return;
      const Rv& rv = w.rvs()[ev.subject];
      const Joule home_cost =
          cfg.rv.move_cost * Meter{distance(rv.pos, base)};
      EXPECT_GE(rv.battery.level().value() + 1e-6,
                home_cost.value() + reserve.value())
          << "trial " << trial << " rv " << ev.subject << " at t=" << ev.time;
      ++arrivals;
    });
    w.run();
    EXPECT_GT(arrivals, 0u) << "trial " << trial << " exercised no RV legs";
  }
}

}  // namespace
}  // namespace wrsn
