#include <gtest/gtest.h>

#include <sstream>

#include "core/units.hpp"

namespace wrsn {
namespace {

TEST(Units, ArithmeticWithinOneUnit) {
  const Joule a{3.0};
  const Joule b{4.5};
  EXPECT_DOUBLE_EQ((a + b).value(), 7.5);
  EXPECT_DOUBLE_EQ((b - a).value(), 1.5);
  EXPECT_DOUBLE_EQ((-a).value(), -3.0);
  EXPECT_DOUBLE_EQ((a * 2.0).value(), 6.0);
  EXPECT_DOUBLE_EQ((2.0 * a).value(), 6.0);
  EXPECT_DOUBLE_EQ((b / 3.0).value(), 1.5);
  EXPECT_DOUBLE_EQ(b / a, 1.5);  // ratio is dimensionless
}

TEST(Units, CompoundAssignment) {
  Joule e{1.0};
  e += Joule{2.0};
  EXPECT_DOUBLE_EQ(e.value(), 3.0);
  e -= Joule{0.5};
  EXPECT_DOUBLE_EQ(e.value(), 2.5);
  e *= 4.0;
  EXPECT_DOUBLE_EQ(e.value(), 10.0);
  e /= 5.0;
  EXPECT_DOUBLE_EQ(e.value(), 2.0);
}

TEST(Units, Comparisons) {
  EXPECT_LT(Joule{1.0}, Joule{2.0});
  EXPECT_GE(Watt{3.0}, Watt{3.0});
  EXPECT_EQ(Meter{5.0}, Meter{5.0});
  EXPECT_NE(Second{1.0}, Second{2.0});
}

TEST(Units, CrossUnitAlgebra) {
  // P * t = E
  EXPECT_DOUBLE_EQ((Watt{2.0} * Second{3.0}).value(), 6.0);
  EXPECT_DOUBLE_EQ((Second{3.0} * Watt{2.0}).value(), 6.0);
  // E / P = t, E / t = P
  EXPECT_DOUBLE_EQ((Joule{6.0} / Watt{2.0}).value(), 3.0);
  EXPECT_DOUBLE_EQ((Joule{6.0} / Second{3.0}).value(), 2.0);
  // d / v = t, v * t = d
  EXPECT_DOUBLE_EQ((Meter{10.0} / MeterPerSecond{2.0}).value(), 5.0);
  EXPECT_DOUBLE_EQ((MeterPerSecond{2.0} * Second{5.0}).value(), 10.0);
  // e_m * d = E (RV traction)
  EXPECT_DOUBLE_EQ((JoulePerMeter{5.6} * Meter{100.0}).value(), 560.0);
  EXPECT_DOUBLE_EQ((Meter{100.0} * JoulePerMeter{5.6}).value(), 560.0);
  // e_m * v = P (traction power)
  EXPECT_DOUBLE_EQ((JoulePerMeter{5.6} * MeterPerSecond{1.0}).value(), 5.6);
}

TEST(Units, LiteralHelpers) {
  EXPECT_DOUBLE_EQ(kilojoules(2.0).value(), 2000.0);
  EXPECT_DOUBLE_EQ(megajoules(1.5).value(), 1.5e6);
  EXPECT_DOUBLE_EQ(milliwatts(30.0).value(), 0.030);
  EXPECT_DOUBLE_EQ(microwatts(15.0).value(), 15e-6);
  EXPECT_DOUBLE_EQ(minutes(2.0).value(), 120.0);
  EXPECT_DOUBLE_EQ(hours(1.0).value(), 3600.0);
  EXPECT_DOUBLE_EQ(days(1.0).value(), 86400.0);
}

TEST(Units, BatteryEnergyFormula) {
  // 750 mAh at 1.2 V = 0.75 * 1.2 * 3600 J = 3240 J per cell.
  EXPECT_DOUBLE_EQ(battery_energy(1.2, 750.0).value(), 3240.0);
}

TEST(Units, PowerDrawFormula) {
  // 27 mA at 3 V = 81 mW (the CC2480 tx figure).
  EXPECT_DOUBLE_EQ(power_draw(3.0, 27.0).value(), 0.081);
}

TEST(Units, StreamOutput) {
  std::ostringstream os;
  os << Joule{2.5};
  EXPECT_EQ(os.str(), "2.5");
}

}  // namespace
}  // namespace wrsn
