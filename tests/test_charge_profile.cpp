#include <gtest/gtest.h>

#include "core/error.hpp"
#include "energy/charge_profile.hpp"

namespace wrsn {
namespace {

ChargeProfile constant(double watts_ = 2.0) {
  return {ChargeProfileKind::kConstantPower, Watt{watts_}, 0.8, 0.1};
}

ChargeProfile tapered(double watts_ = 2.0, double knee = 0.8, double trickle = 0.1) {
  return {ChargeProfileKind::kTaperedCcCv, Watt{watts_}, knee, trickle};
}

TEST(ChargeProfile, ConstantPowerLinearTime) {
  Battery b(Joule{100.0}, Joule{20.0});
  EXPECT_DOUBLE_EQ(constant().time_to_reach(b, Joule{60.0}).value(), 20.0);
  EXPECT_DOUBLE_EQ(constant().time_to_full(b).value(), 40.0);
}

TEST(ChargeProfile, TargetClampedToLevelAndCapacity) {
  Battery b(Joule{100.0}, Joule{50.0});
  EXPECT_DOUBLE_EQ(constant().time_to_reach(b, Joule{10.0}).value(), 0.0);
  EXPECT_DOUBLE_EQ(constant().time_to_reach(b, Joule{500.0}).value(), 25.0);
}

TEST(ChargeProfile, TaperedMatchesConstantBelowKnee) {
  // Charging entirely within the CC region: identical times.
  Battery b(Joule{100.0}, Joule{10.0});
  EXPECT_DOUBLE_EQ(tapered().time_to_reach(b, Joule{70.0}).value(),
                   constant().time_to_reach(b, Joule{70.0}).value());
}

TEST(ChargeProfile, TaperedSlowerAboveKnee) {
  Battery b(Joule{100.0}, Joule{85.0});  // starts in the taper region
  const double t_const = constant().time_to_reach(b, Joule{100.0}).value();
  const double t_taper = tapered().time_to_reach(b, Joule{100.0}).value();
  EXPECT_GT(t_taper, t_const);
  // Bounded by charging the whole stretch at the trickle rate.
  EXPECT_LT(t_taper, 15.0 / (2.0 * 0.1) + 1e-9);
}

TEST(ChargeProfile, FullChargeTimesOrdered) {
  Battery b(Joule{100.0}, Joule{0.0});
  const double t_const = constant().time_to_full(b).value();
  const double t_taper = tapered().time_to_full(b).value();
  EXPECT_DOUBLE_EQ(t_const, 50.0);
  EXPECT_GT(t_taper, t_const);
  EXPECT_LT(t_taper, 50.0 * 10.0);  // far from the all-trickle worst case
}

TEST(ChargeProfile, TrickleOneDegeneratesToConstant) {
  Battery b(Joule{100.0}, Joule{40.0});
  const auto p = tapered(2.0, 0.8, 1.0);
  EXPECT_NEAR(p.time_to_full(b).value(), constant().time_to_full(b).value(), 1e-9);
}

TEST(ChargeProfile, EnergyAfterInvertsTimeToReach) {
  for (double start : {0.0, 0.5, 0.83, 0.95}) {
    for (double target : {0.6, 0.9, 1.0}) {
      if (target <= start) continue;
      Battery b(Joule{100.0}, Joule{100.0 * start});
      const auto p = tapered();
      const Second t = p.time_to_reach(b, Joule{100.0 * target});
      const Joule e = p.energy_after(b, t);
      EXPECT_NEAR(e.value(), 100.0 * (target - start), 1e-6)
          << "start=" << start << " target=" << target;
    }
  }
}

TEST(ChargeProfile, EnergyAfterMonotoneInTime) {
  Battery b(Joule{100.0}, Joule{70.0});
  const auto p = tapered();
  double prev = -1.0;
  for (double t = 0.0; t <= 60.0; t += 5.0) {
    const double e = p.energy_after(b, Second{t}).value();
    EXPECT_GE(e, prev);
    EXPECT_LE(e, 30.0 + 1e-9);
    prev = e;
  }
}

TEST(ChargeProfile, EnergyAfterCapsAtFull) {
  Battery b(Joule{100.0}, Joule{90.0});
  EXPECT_NEAR(tapered().energy_after(b, Second{1e6}).value(), 10.0, 1e-9);
}

TEST(ChargeProfile, Validation) {
  ChargeProfile bad = tapered();
  bad.rated_power = Watt{0.0};
  Battery b(Joule{100.0});
  EXPECT_THROW((void)bad.time_to_full(b), InvalidArgument);
  bad = tapered();
  bad.knee_soc = 1.0;
  EXPECT_THROW((void)bad.time_to_full(b), InvalidArgument);
  bad = tapered();
  bad.trickle_fraction = 0.0;
  EXPECT_THROW((void)bad.time_to_full(b), InvalidArgument);
  EXPECT_THROW((void)tapered().energy_after(b, Second{-1.0}), InvalidArgument);
}

// Property sweep: time_to_reach is additive over intermediate stops.
class ChargeAdditivity : public ::testing::TestWithParam<double> {};

TEST_P(ChargeAdditivity, SplitChargeTimesAddUp) {
  const double mid = GetParam();
  Battery lo(Joule{100.0}, Joule{10.0});
  Battery at_mid(Joule{100.0}, Joule{mid});
  const auto p = tapered();
  const double direct = p.time_to_reach(lo, Joule{100.0}).value();
  const double leg1 = p.time_to_reach(lo, Joule{mid}).value();
  const double leg2 = p.time_to_reach(at_mid, Joule{100.0}).value();
  EXPECT_NEAR(direct, leg1 + leg2, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(MidPoints, ChargeAdditivity,
                         ::testing::Values(20.0, 50.0, 80.0, 85.0, 95.0));

}  // namespace
}  // namespace wrsn
