// Unit tests for the scheduler-policy layer: every policy is driven through
// a hand-built DispatchContext (no World, no event loop), so the decision
// logic is pinned down against synthetic edge cases — empty item lists (all
// requests claimed), over-budget batches and the happy paths.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/error.hpp"
#include "core/rng.hpp"
#include "sched/policy.hpp"

namespace wrsn {
namespace {

RechargeItem item_at(Vec2 pos, double demand, std::vector<SensorId> sensors,
                     bool critical = false) {
  RechargeItem it;
  it.pos = pos;
  it.demand = Joule{demand};
  it.critical = critical;
  it.min_fraction = 0.3;
  it.sensors = std::move(sensors);
  return it;
}

// A self-contained planning round: the vectors a DispatchContext references,
// bundled so tests can mutate them before building the facade.
struct Round {
  std::vector<RechargeItem> items;
  RvPlanState rv{{100.0, 100.0}, Joule{50000.0}};
  PlannerParams params{JoulePerMeter{5.6}, Vec2{100.0, 100.0}};
  std::size_t rv_id = 0;
  std::vector<Vec2> fleet{{100.0, 100.0}};
  std::size_t num_groups = 1;
  Xoshiro256 rng{42};
  std::vector<SensorId> arrival;
  std::map<SensorId, SensorView> sensors;

  // Registers a single-sensor item and its base-station view.
  void add_single(SensorId s, Vec2 pos, double demand, bool critical = false) {
    items.push_back(item_at(pos, demand, {s}, critical));
    sensors[s] = SensorView{pos, Joule{demand}, critical};
    arrival.push_back(s);
  }

  [[nodiscard]] DispatchContext ctx() {
    return DispatchContext(items, rv, params, rv_id, fleet, num_groups, rng,
                           arrival, [this](SensorId s) {
                             const auto it = sensors.find(s);
                             WRSN_REQUIRE(it != sensors.end(),
                                          "test sensor view missing");
                             return it->second;
                           });
  }
};

std::unique_ptr<SchedulerPolicy> make(const std::string& name) {
  return SchedulerRegistry::instance().create(name);
}

// --- registry ------------------------------------------------------------

TEST(SchedulerRegistry, BuiltinsRegisteredInOrder) {
  const std::vector<std::string> expected = {
      "greedy", "partition", "combined", "nearest-first", "fcfs", "edf"};
  EXPECT_EQ(scheduler_names(), expected);
  for (const std::string& name : expected) {
    EXPECT_TRUE(SchedulerRegistry::instance().contains(name));
    EXPECT_FALSE(SchedulerRegistry::instance().summary(name).empty());
    EXPECT_NE(make(name), nullptr);
  }
}

TEST(SchedulerRegistry, UnknownNameThrowsListingValidNames) {
  try {
    (void)make("quantum-annealer");
    FAIL() << "expected InvalidArgument";
  } catch (const InvalidArgument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("quantum-annealer"), std::string::npos) << msg;
    for (const std::string& name : scheduler_names()) {
      EXPECT_NE(msg.find(name), std::string::npos) << msg;
    }
  }
}

TEST(SchedulerRegistry, RejectsDuplicatesAndBadEntries) {
  SchedulerRegistry& registry = SchedulerRegistry::instance();
  const auto factory = []() -> std::unique_ptr<SchedulerPolicy> {
    return nullptr;
  };
  EXPECT_THROW(registry.add("greedy", "dup", factory), InvalidArgument);
  EXPECT_THROW(registry.add("", "anonymous", factory), InvalidArgument);
  EXPECT_THROW(registry.add("null-factory", "no factory", nullptr),
               InvalidArgument);
  EXPECT_FALSE(registry.contains("null-factory"));
}

// --- cross-policy edge cases --------------------------------------------

// All requests claimed (or none outstanding): the World filters claimed
// sensors before aggregation, so the policy sees an empty item list. Every
// policy must answer with a no-plan decision, never a plan over nothing.
TEST(Policies, EmptyItemListNeverPlans) {
  for (const std::string& name : scheduler_names()) {
    Round round;
    const DispatchDecision d = make(name)->decide(round.ctx());
    EXPECT_NE(d.kind, DispatchDecision::Kind::kPlan) << name;
    EXPECT_TRUE(d.sequence.empty()) << name;
  }
}

// A single far-away batch whose tour cost exceeds the budget: no policy may
// plan it; the shared fallback resolves to self-charge (head home, refill).
TEST(Policies, OverBudgetBatchFallsBackToSelfCharge) {
  for (const std::string& name : scheduler_names()) {
    Round round;
    round.rv.available = Joule{100.0};  // 2 x 90 m legs already cost 1008 J
    round.add_single(7, {190.0, 100.0}, 500.0);
    const DispatchDecision d = make(name)->decide(round.ctx());
    EXPECT_EQ(d.kind, DispatchDecision::Kind::kSelfCharge) << name;
  }
}

// One affordable single-sensor batch: every policy should serve it.
TEST(Policies, SingleAffordableItemIsPlanned) {
  for (const std::string& name : scheduler_names()) {
    Round round;
    round.add_single(3, {110.0, 100.0}, 200.0);
    const DispatchDecision d = make(name)->decide(round.ctx());
    ASSERT_EQ(d.kind, DispatchDecision::Kind::kPlan) << name;
    ASSERT_EQ(d.sequence.size(), 1u) << name;
    const RechargeItem& chosen = d.items[d.sequence[0]];
    ASSERT_EQ(chosen.sensors.size(), 1u) << name;
    EXPECT_EQ(chosen.sensors[0], 3u) << name;
  }
}

// --- singles expansion ---------------------------------------------------

TEST(DispatchContext, SinglesExpandBatchesPerSensorView) {
  Round round;
  round.items.push_back(item_at({50.0, 50.0}, 900.0, {1, 2}, true));
  round.sensors[1] = SensorView{{49.0, 50.0}, Joule{400.0}, false};
  round.sensors[2] = SensorView{{51.0, 50.0}, Joule{500.0}, true};
  const DispatchContext ctx = round.ctx();

  const auto fresh =
      ctx.singles(round.items, DispatchContext::SinglesCritical::kFresh);
  ASSERT_EQ(fresh.size(), 2u);
  EXPECT_EQ(fresh[0].sensors, std::vector<SensorId>{1});
  EXPECT_DOUBLE_EQ(fresh[0].demand.value(), 400.0);
  EXPECT_FALSE(fresh[0].critical);  // re-evaluated per sensor
  EXPECT_TRUE(fresh[1].critical);

  const auto inherited =
      ctx.singles(round.items, DispatchContext::SinglesCritical::kInherit);
  ASSERT_EQ(inherited.size(), 2u);
  EXPECT_TRUE(inherited[0].critical);  // batch flag copied
  EXPECT_TRUE(inherited[1].critical);
}

// --- FCFS ----------------------------------------------------------------

// Regression: an oversized oldest batch used to make FCFS hold the RV for
// the whole round. It must skip to the next-oldest affordable batch.
TEST(FcfsPolicy, SkipsUnaffordableOldestBatch) {
  Round round;
  round.rv.available = Joule{3000.0};
  round.add_single(1, {150.0, 100.0}, 50000.0);  // oldest, unaffordable
  round.add_single(2, {105.0, 100.0}, 100.0);    // next-oldest, affordable
  const DispatchDecision d = make("fcfs")->decide(round.ctx());
  ASSERT_EQ(d.kind, DispatchDecision::Kind::kPlan);
  ASSERT_EQ(d.sequence.size(), 1u);
  EXPECT_EQ(d.items[d.sequence[0]].sensors, std::vector<SensorId>{2});
}

TEST(FcfsPolicy, ServesOldestAffordableBatchFirst) {
  Round round;
  // Arrival order 5 then 4; both affordable; 4 is nearer. FCFS must still
  // pick 5's batch.
  round.add_single(5, {140.0, 100.0}, 100.0);
  round.add_single(4, {105.0, 100.0}, 100.0);
  const DispatchDecision d = make("fcfs")->decide(round.ctx());
  ASSERT_EQ(d.kind, DispatchDecision::Kind::kPlan);
  EXPECT_EQ(d.items[d.sequence[0]].sensors, std::vector<SensorId>{5});
}

TEST(FcfsPolicy, WeighsEachBatchOnce) {
  // Two sensors of one unaffordable batch ahead of an affordable single:
  // the batch is weighed at the first member and skipped at the second.
  Round round;
  round.rv.available = Joule{3000.0};
  round.items.push_back(item_at({150.0, 100.0}, 50000.0, {1, 2}));
  round.sensors[1] = SensorView{{149.0, 100.0}, Joule{25000.0}, false};
  round.sensors[2] = SensorView{{151.0, 100.0}, Joule{25000.0}, false};
  round.add_single(3, {105.0, 100.0}, 100.0);
  round.arrival = {1, 2, 3};  // both batch members ahead of the single
  const DispatchDecision d = make("fcfs")->decide(round.ctx());
  ASSERT_EQ(d.kind, DispatchDecision::Kind::kPlan);
  EXPECT_EQ(d.items[d.sequence[0]].sensors, std::vector<SensorId>{3});
}

// --- nearest-first / edf / greedy selection ------------------------------

TEST(NearestFirstPolicy, PicksClosestRegardlessOfDemand) {
  Round round;
  round.add_single(1, {190.0, 100.0}, 5000.0);  // far, rich
  round.add_single(2, {105.0, 100.0}, 100.0);   // near, poor
  const DispatchDecision d = make("nearest-first")->decide(round.ctx());
  ASSERT_EQ(d.kind, DispatchDecision::Kind::kPlan);
  EXPECT_EQ(d.items[d.sequence[0]].sensors, std::vector<SensorId>{2});
}

TEST(EdfPolicy, PicksLowestBatteryFraction) {
  Round round;
  round.add_single(1, {105.0, 100.0}, 100.0);
  round.add_single(2, {150.0, 100.0}, 100.0);
  round.items[0].min_fraction = 0.4;
  round.items[1].min_fraction = 0.05;  // nearly dead: earliest deadline
  const DispatchDecision d = make("edf")->decide(round.ctx());
  ASSERT_EQ(d.kind, DispatchDecision::Kind::kPlan);
  EXPECT_EQ(d.items[d.sequence[0]].sensors, std::vector<SensorId>{2});
}

TEST(GreedyPolicy, PlansOverExpandedSingles) {
  // A two-sensor batch: greedy ignores the aggregation and returns a plan
  // over per-sensor singles (one destination per step, Algorithm 2).
  Round round;
  round.items.push_back(item_at({110.0, 100.0}, 900.0, {1, 2}));
  round.sensors[1] = SensorView{{109.0, 100.0}, Joule{400.0}, false};
  round.sensors[2] = SensorView{{111.0, 100.0}, Joule{500.0}, false};
  round.arrival = {1, 2};
  const DispatchDecision d = make("greedy")->decide(round.ctx());
  ASSERT_EQ(d.kind, DispatchDecision::Kind::kPlan);
  ASSERT_EQ(d.sequence.size(), 1u);
  EXPECT_EQ(d.items.size(), 2u);  // singles, not the original batch
  EXPECT_EQ(d.items[d.sequence[0]].sensors.size(), 1u);
}

// --- partition -----------------------------------------------------------

TEST(PartitionPolicy, NoGroupForThisRvReturnsToBase) {
  // Two groups, two RVs; RV 1 sits on top of the only populated cluster of
  // items, so group matching assigns it there and RV 0 gets nothing.
  Round round;
  round.num_groups = 2;
  round.fleet = {{20.0, 20.0}, {180.0, 180.0}};
  round.rv_id = 0;
  round.rv.pos = {20.0, 20.0};
  round.add_single(1, {180.0, 180.0}, 100.0);
  const DispatchDecision d = make("partition")->decide(round.ctx());
  EXPECT_EQ(d.kind, DispatchDecision::Kind::kReturnToBase);
}

TEST(PartitionPolicy, PlansWithinItsOwnGroup) {
  Round round;
  round.num_groups = 2;
  round.fleet = {{20.0, 20.0}, {180.0, 180.0}};
  round.rv_id = 1;
  round.rv.pos = {180.0, 180.0};
  round.add_single(1, {25.0, 20.0}, 100.0);
  round.add_single(2, {178.0, 180.0}, 100.0);
  const DispatchDecision d = make("partition")->decide(round.ctx());
  ASSERT_EQ(d.kind, DispatchDecision::Kind::kPlan);
  for (const std::size_t idx : d.sequence) {
    EXPECT_EQ(d.items[idx].sensors, std::vector<SensorId>{2})
        << "RV 1 must stay in its own region";
  }
}

}  // namespace
}  // namespace wrsn
