#include <gtest/gtest.h>

#include "core/error.hpp"
#include "core/rng.hpp"
#include "net/deployment.hpp"

namespace wrsn {
namespace {

TEST(Deployment, CountAndBounds) {
  Xoshiro256 rng(1);
  const auto pts = deploy_uniform(500, 200.0, rng);
  ASSERT_EQ(pts.size(), 500u);
  for (const Vec2& p : pts) {
    EXPECT_GE(p.x, 0.0);
    EXPECT_LT(p.x, 200.0);
    EXPECT_GE(p.y, 0.0);
    EXPECT_LT(p.y, 200.0);
  }
}

TEST(Deployment, DeterministicPerSeed) {
  Xoshiro256 a(5), b(5);
  EXPECT_EQ(deploy_uniform(100, 50.0, a), deploy_uniform(100, 50.0, b));
}

TEST(Deployment, DifferentSeedsDiffer) {
  Xoshiro256 a(5), b(6);
  EXPECT_NE(deploy_uniform(100, 50.0, a), deploy_uniform(100, 50.0, b));
}

TEST(Deployment, UniformMarginals) {
  Xoshiro256 rng(9);
  const auto pts = deploy_uniform(20000, 100.0, rng);
  double mx = 0.0, my = 0.0;
  int left = 0;
  for (const Vec2& p : pts) {
    mx += p.x;
    my += p.y;
    if (p.x < 50.0) ++left;
  }
  EXPECT_NEAR(mx / pts.size(), 50.0, 1.0);
  EXPECT_NEAR(my / pts.size(), 50.0, 1.0);
  EXPECT_NEAR(static_cast<double>(left) / pts.size(), 0.5, 0.02);
}

TEST(Deployment, ZeroSensorsAllowed) {
  Xoshiro256 rng(1);
  EXPECT_TRUE(deploy_uniform(0, 10.0, rng).empty());
}

TEST(Deployment, Validation) {
  Xoshiro256 rng(1);
  EXPECT_THROW(deploy_uniform(10, 0.0, rng), InvalidArgument);
  EXPECT_THROW((void)random_location(-1.0, rng), InvalidArgument);
}

TEST(Deployment, RandomLocationInField) {
  Xoshiro256 rng(3);
  for (int i = 0; i < 1000; ++i) {
    const Vec2 p = random_location(75.0, rng);
    EXPECT_GE(p.x, 0.0);
    EXPECT_LT(p.x, 75.0);
    EXPECT_GE(p.y, 0.0);
    EXPECT_LT(p.y, 75.0);
  }
}

}  // namespace
}  // namespace wrsn
